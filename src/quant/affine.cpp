#include "quant/affine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/cpu.hpp"
#include "base/rng.hpp"

#if APT_X86
#include <immintrin.h>
#endif

namespace apt::quant {

namespace {

#if APT_X86
// Per element, the exact op sequence of quantize_codes_u8_scalar:
// mul, add (deliberately unfused — the target attribute carries no
// "fma", so the compiler cannot contract them either here or in the
// scalar loop), +0.5 behind a >= 0 mask (NaN fails the compare and
// saturates to 0), min with qmax, truncate. Identical IEEE ops in the
// same order means identical bits for every input.
__attribute__((target("avx2"))) void quantize_codes_u8_avx2(
    const float* src, int64_t n, float inv, float z, float qmax,
    uint8_t* dst) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vz = _mm256_set1_ps(z);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 vqmax = _mm256_set1_ps(qmax);
  const __m256 vzero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 q = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(src + i), vinv),
                             vz);
    const __m256 ge = _mm256_cmp_ps(q, vzero, _CMP_GE_OQ);
    q = _mm256_and_ps(ge, _mm256_add_ps(q, vhalf));
    q = _mm256_min_ps(q, vqmax);
    const __m256i qi = _mm256_cvttps_epi32(q);
    // 8 int32 codes in [0, 255] -> 8 bytes (pack via int16).
    const __m128i lo = _mm256_castsi256_si128(qi);
    const __m128i hi = _mm256_extracti128_si256(qi, 1);
    const __m128i w = _mm_packus_epi32(lo, hi);
    const __m128i b = _mm_packus_epi16(w, w);
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) {
    float q = src[i] * inv + z;
    q = q >= 0.0f ? q + 0.5f : 0.0f;
    if (q > qmax) q = qmax;
    dst[i] = static_cast<uint8_t>(q);
  }
}

__attribute__((target("avx2"))) void dequantize_codes_u8_avx2(
    const uint8_t* src, int64_t n, double scale, int32_t zero, float* dst) {
  const __m256d vs = _mm256_set1_pd(scale);
  const __m128i vz = _mm_set1_epi32(zero);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int32_t quad;
    std::memcpy(&quad, src + i, sizeof(quad));
    const __m128i q = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(quad));
    const __m256d d = _mm256_cvtepi32_pd(_mm_sub_epi32(q, vz));
    const __m128 f = _mm256_cvtpd_ps(_mm256_mul_pd(vs, d));
    _mm_storeu_ps(dst + i, f);
  }
  for (; i < n; ++i)
    dst[i] = static_cast<float>(scale * static_cast<double>(src[i] - zero));
}

__attribute__((target("avx2"))) void minmax_u8_avx2(const uint8_t* src,
                                                    int64_t n, uint8_t* out_lo,
                                                    uint8_t* out_hi) {
  __m256i vlo = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i vhi = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    vlo = _mm256_min_epu8(vlo, v);
    vhi = _mm256_max_epu8(vhi, v);
  }
  alignas(32) uint8_t lo32[32], hi32[32];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo32), vlo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hi32), vhi);
  uint8_t lo = 0xFF, hi = 0;
  for (int j = 0; j < 32; ++j) {
    lo = std::min(lo, lo32[j]);
    hi = std::max(hi, hi32[j]);
  }
  for (; i < n; ++i) {
    lo = std::min(lo, src[i]);
    hi = std::max(hi, src[i]);
  }
  *out_lo = lo;
  *out_hi = hi;
}
#endif  // APT_X86

// Counter words are produced in chunks of this many elements; both
// rounding paths draw from the same philox_fill_u32 stream, so the chunk
// size is a staging detail, not part of the bit contract.
constexpr int64_t kSrChunk = 256;

#if APT_X86
// 8-lane mulhi_epu32: the odd lanes ride the 64-bit products' high
// words, the even lanes are shifted down from theirs.
__attribute__((target("avx2"))) inline __m256i mulhi_epu32(__m256i a,
                                                           __m256i m) {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(a, m), 32);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), m);
  const __m256i odd_hi =
      _mm256_and_si256(odd, _mm256_set1_epi64x(
                                static_cast<long long>(0xFFFFFFFF00000000ULL)));
  return _mm256_or_si256(even, odd_hi);
}

// Eight Philox blocks per iteration (32 counter words), bit-identical to
// the scalar philox_fill_u32: the same 10 rounds run in 8 lanes, then a
// 4x8 transpose restores the block-major word order. Misaligned heads
// and tails fall back to the scalar walker.
__attribute__((target("avx2"))) void philox_fill_u32_avx2(uint64_t key,
                                                          uint64_t base,
                                                          int64_t n,
                                                          uint32_t* out) {
  int64_t i = 0;
  // Scalar head until the next index is block-aligned.
  if ((base & 3) != 0) {
    const int64_t head = std::min<int64_t>(
        n, static_cast<int64_t>(4 - (base & 3)));
    philox_fill_u32(key, base, head, out);
    i = head;
  }
  constexpr uint32_t kM0 = 0xD2511F53u, kM1 = 0xCD9E8D57u;
  constexpr uint32_t kW0 = 0x9E3779B9u, kW1 = 0xBB67AE85u;
  const __m256i vm0 = _mm256_set1_epi32(static_cast<int>(kM0));
  const __m256i vm1 = _mm256_set1_epi32(static_cast<int>(kM1));
  const __m256i vw0 = _mm256_set1_epi32(static_cast<int>(kW0));
  const __m256i vw1 = _mm256_set1_epi32(static_cast<int>(kW1));
  const __m256i vbias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vlane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i k0_init = _mm256_set1_epi32(static_cast<int>(key));
  const __m256i k1_init = _mm256_set1_epi32(static_cast<int>(key >> 32));
  for (; i + 32 <= n; i += 32) {
    const uint64_t blk = (base + static_cast<uint64_t>(i)) >> 2;
    // Counters blk..blk+7 as 32-bit halves, with the unsigned-wrap carry
    // folded into the high word.
    const __m256i clo0 = _mm256_set1_epi32(static_cast<int>(blk));
    __m256i x0 = _mm256_add_epi32(clo0, vlane);
    const __m256i wrapped = _mm256_cmpgt_epi32(
        _mm256_xor_si256(clo0, vbias), _mm256_xor_si256(x0, vbias));
    __m256i x1 = _mm256_sub_epi32(
        _mm256_set1_epi32(static_cast<int>(blk >> 32)), wrapped);
    __m256i x2 = _mm256_setzero_si256();
    __m256i x3 = _mm256_setzero_si256();
    __m256i k0 = k0_init;
    __m256i k1 = k1_init;
    for (int round = 0; round < 10; ++round) {
      const __m256i hi0 = mulhi_epu32(x0, vm0);
      const __m256i lo0 = _mm256_mullo_epi32(x0, vm0);
      const __m256i hi1 = mulhi_epu32(x2, vm1);
      const __m256i lo1 = _mm256_mullo_epi32(x2, vm1);
      x0 = _mm256_xor_si256(_mm256_xor_si256(hi1, x1), k0);
      x1 = lo1;
      x2 = _mm256_xor_si256(_mm256_xor_si256(hi0, x3), k1);
      x3 = lo0;
      k0 = _mm256_add_epi32(k0, vw0);
      k1 = _mm256_add_epi32(k1, vw1);
    }
    // 4x8 transpose: lane j of x0..x3 is block j's word 0..3; emit the
    // words block-major, exactly as the scalar walker does.
    const __m256i t0 = _mm256_unpacklo_epi32(x0, x1);
    const __m256i t1 = _mm256_unpackhi_epi32(x0, x1);
    const __m256i t2 = _mm256_unpacklo_epi32(x2, x3);
    const __m256i t3 = _mm256_unpackhi_epi32(x2, x3);
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);  // blocks 0 | 4
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);  // blocks 1 | 5
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);  // blocks 2 | 6
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);  // blocks 3 | 7
    __m256i* o = reinterpret_cast<__m256i*>(out + i);
    _mm256_storeu_si256(o + 0, _mm256_permute2x128_si256(u0, u1, 0x20));
    _mm256_storeu_si256(o + 1, _mm256_permute2x128_si256(u2, u3, 0x20));
    _mm256_storeu_si256(o + 2, _mm256_permute2x128_si256(u0, u1, 0x31));
    _mm256_storeu_si256(o + 3, _mm256_permute2x128_si256(u2, u3, 0x31));
  }
  if (i < n)
    philox_fill_u32(key, base + static_cast<uint64_t>(i), n - i, out + i);
}

// Per element, the exact op sequence of quantize_codes_u8_sr_scalar:
// mul, add (unfused — no "fma" in the target attribute), floor, an exact
// fractional-part subtraction, an ordered u01 < frac compare (false on
// NaN), +1.0 behind the compare mask, min with qmax, and a >= 0 mask that
// zeroes negative and NaN lanes. u01 itself is (word >> 8) * 2^-24 — a
// 24-bit integer converted exactly, so the scalar and vector conversions
// agree bit-for-bit. Identical IEEE ops in the same order means identical
// codes for every input.
__attribute__((target("avx2"))) void quantize_codes_u8_sr_avx2(
    const float* src, int64_t n, float inv, float z, float qmax,
    uint64_t key, uint64_t base, uint8_t* dst) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vz = _mm256_set1_ps(z);
  const __m256 vqmax = _mm256_set1_ps(qmax);
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vscale24 = _mm256_set1_ps(0x1p-24f);
  uint32_t words[kSrChunk];
  for (int64_t c = 0; c < n; c += kSrChunk) {
    const int64_t m = std::min<int64_t>(kSrChunk, n - c);
    philox_fill_u32_avx2(key, base + static_cast<uint64_t>(c), m, words);
    int64_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m256 q = _mm256_add_ps(
          _mm256_mul_ps(_mm256_loadu_ps(src + c + j), vinv), vz);
      const __m256 ge = _mm256_cmp_ps(q, vzero, _CMP_GE_OQ);
      const __m256 f = _mm256_floor_ps(q);
      const __m256 frac = _mm256_sub_ps(q, f);
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + j));
      const __m256 u = _mm256_mul_ps(
          _mm256_cvtepi32_ps(_mm256_srli_epi32(w, 8)), vscale24);
      const __m256 bump = _mm256_cmp_ps(u, frac, _CMP_LT_OQ);
      __m256 code = _mm256_add_ps(f, _mm256_and_ps(bump, vone));
      code = _mm256_min_ps(code, vqmax);
      code = _mm256_and_ps(ge, code);
      const __m256i qi = _mm256_cvttps_epi32(code);
      const __m128i lo = _mm256_castsi256_si128(qi);
      const __m128i hi = _mm256_extracti128_si256(qi, 1);
      const __m128i w16 = _mm_packus_epi32(lo, hi);
      const __m128i b = _mm_packus_epi16(w16, w16);
      std::memcpy(dst + c + j, &b, 8);
    }
    for (; j < m; ++j) {
      float q = src[c + j] * inv + z;
      if (!(q >= 0.0f)) {
        dst[c + j] = 0;
        continue;
      }
      const float f = std::floor(q);
      const float frac = q - f;
      const float u = philox_u01(words[j]);
      float code = u < frac ? f + 1.0f : f;
      if (code > qmax) code = qmax;
      dst[c + j] = static_cast<uint8_t>(code);
    }
  }
}
#endif  // APT_X86

}  // namespace

QuantParams choose_params(float lo, float hi, int bits) {
  APT_CHECK(bits >= 2 && bits <= 32) << "bitwidth out of range: " << bits;
  APT_CHECK(std::isfinite(lo) && std::isfinite(hi) && lo <= hi)
      << "bad range [" << lo << ", " << hi << "]";

  // Include zero so it is exactly representable (needed for padding /
  // sparse weights), matching the affine scheme of Jacob et al.
  double dlo = std::min<double>(lo, 0.0);
  double dhi = std::max<double>(hi, 0.0);
  if (dhi - dlo < 1e-12) {  // degenerate: all values equal (and == 0)
    dhi = dlo + 1e-12;
  }

  QuantParams p;
  p.bits = bits;
  const double levels = static_cast<double>(max_code(bits));  // 2^k - 1
  p.scale = (dhi - dlo) / levels;

  // Nudge the zero point onto an integer code inside [0, 2^k - 1].
  const double z_real = -dlo / p.scale;
  p.zero_point = std::clamp<int64_t>(
      static_cast<int64_t>(std::llround(z_real)), 0, max_code(bits));
  return p;
}

QuantParams choose_params(const Tensor& t, int bits) {
  APT_CHECK(t.numel() > 0) << "cannot derive range from an empty tensor";
  return choose_params(t.min(), t.max(), bits);
}

int64_t round_steps(double x, RoundMode mode, double u01) {
  switch (mode) {
    case RoundMode::kNearest:
      return std::llround(x);
    case RoundMode::kTrunc:
      return static_cast<int64_t>(std::trunc(x));
    case RoundMode::kStochastic: {
      const double f = std::floor(x);
      const double frac = x - f;
      return static_cast<int64_t>(f) + (u01 < frac ? 1 : 0);
    }
  }
  return 0;  // unreachable
}

void quantize_codes_u8_scalar(const float* src, int64_t n,
                              const QuantParams& p, uint8_t* dst) {
  APT_CHECK(p.bits <= 8)
      << "quantize_codes_u8 needs an 8-bit-or-narrower grid, got " << p.bits;
  const float inv = static_cast<float>(1.0 / p.scale);
  const float z = static_cast<float>(p.zero_point);
  const float qmax = static_cast<float>(max_code(p.bits));
  for (int64_t i = 0; i < n; ++i) {
    float q = src[i] * inv + z;
    // Below-range (and NaN) saturates to code 0; the +0.5/truncate pair
    // rounds non-negative values half away from zero.
    q = q >= 0.0f ? q + 0.5f : 0.0f;
    if (q > qmax) q = qmax;  // above-range and +Inf saturate
    dst[i] = static_cast<uint8_t>(q);
  }
}

void quantize_codes_u8(const float* src, int64_t n, const QuantParams& p,
                       uint8_t* dst) {
#if APT_X86
  if (cpu_has_avx2_fma()) {
    APT_CHECK(p.bits <= 8)
        << "quantize_codes_u8 needs an 8-bit-or-narrower grid, got "
        << p.bits;
    quantize_codes_u8_avx2(src, n, static_cast<float>(1.0 / p.scale),
                           static_cast<float>(p.zero_point),
                           static_cast<float>(max_code(p.bits)), dst);
    return;
  }
#endif
  quantize_codes_u8_scalar(src, n, p, dst);
}

void quantize_codes_u8_sr_scalar(const float* src, int64_t n,
                                 const QuantParams& p, uint64_t key,
                                 uint64_t base, uint8_t* dst) {
  APT_CHECK(p.bits <= 8)
      << "quantize_codes_u8_sr needs an 8-bit-or-narrower grid, got "
      << p.bits;
  const float inv = static_cast<float>(1.0 / p.scale);
  const float z = static_cast<float>(p.zero_point);
  const float qmax = static_cast<float>(max_code(p.bits));
  uint32_t words[kSrChunk];
  for (int64_t c = 0; c < n; c += kSrChunk) {
    const int64_t m = std::min<int64_t>(kSrChunk, n - c);
    philox_fill_u32(key, base + static_cast<uint64_t>(c), m, words);
    for (int64_t j = 0; j < m; ++j) {
      float q = src[c + j] * inv + z;
      // Below-range (and NaN) saturates to code 0; otherwise round up
      // with probability equal to the fractional grid position.
      if (!(q >= 0.0f)) {
        dst[c + j] = 0;
        continue;
      }
      const float f = std::floor(q);
      const float frac = q - f;  // exact: f and q share a binade
      const float u = philox_u01(words[j]);
      float code = u < frac ? f + 1.0f : f;
      if (code > qmax) code = qmax;  // above-range and +Inf saturate
      dst[c + j] = static_cast<uint8_t>(code);
    }
  }
}

void quantize_codes_u8_sr(const float* src, int64_t n, const QuantParams& p,
                          uint64_t key, uint64_t base, uint8_t* dst) {
#if APT_X86
  if (cpu_has_avx2_fma()) {
    APT_CHECK(p.bits <= 8)
        << "quantize_codes_u8_sr needs an 8-bit-or-narrower grid, got "
        << p.bits;
    quantize_codes_u8_sr_avx2(src, n, static_cast<float>(1.0 / p.scale),
                              static_cast<float>(p.zero_point),
                              static_cast<float>(max_code(p.bits)), key, base,
                              dst);
    return;
  }
#endif
  quantize_codes_u8_sr_scalar(src, n, p, key, base, dst);
}

void dequantize_codes_u8(const uint8_t* src, int64_t n, const QuantParams& p,
                         float* dst) {
#if APT_X86
  if (cpu_has_avx2_fma()) {
    dequantize_codes_u8_avx2(src, n, p.scale,
                             static_cast<int32_t>(p.zero_point), dst);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(p.scale *
                                static_cast<double>(src[i] - p.zero_point));
}

std::pair<uint8_t, uint8_t> minmax_u8(const uint8_t* src, int64_t n) {
  APT_CHECK(n > 0) << "minmax_u8 over an empty plane";
#if APT_X86
  if (cpu_has_avx2_fma()) {
    uint8_t lo, hi;
    minmax_u8_avx2(src, n, &lo, &hi);
    return {lo, hi};
  }
#endif
  uint8_t lo = src[0], hi = src[0];
  for (int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, src[i]);
    hi = std::max(hi, src[i]);
  }
  return {lo, hi};
}

int64_t quantize_value(float r, const QuantParams& p, RoundMode mode) {
  const double q = static_cast<double>(r) / p.scale +
                   static_cast<double>(p.zero_point);
  // Stochastic quantisation of raw values is not used by the library
  // (only update *steps* are rounded stochastically), so u01 = 0.5 keeps
  // this deterministic if ever requested.
  const int64_t code = round_steps(q, mode, 0.5);
  return std::clamp<int64_t>(code, 0, max_code(p.bits));
}

}  // namespace apt::quant
