#include "quant/affine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/cpu.hpp"

#if APT_X86
#include <immintrin.h>
#endif

namespace apt::quant {

namespace {

#if APT_X86
// Per element, the exact op sequence of quantize_codes_u8_scalar:
// mul, add (deliberately unfused — the target attribute carries no
// "fma", so the compiler cannot contract them either here or in the
// scalar loop), +0.5 behind a >= 0 mask (NaN fails the compare and
// saturates to 0), min with qmax, truncate. Identical IEEE ops in the
// same order means identical bits for every input.
__attribute__((target("avx2"))) void quantize_codes_u8_avx2(
    const float* src, int64_t n, float inv, float z, float qmax,
    uint8_t* dst) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vz = _mm256_set1_ps(z);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 vqmax = _mm256_set1_ps(qmax);
  const __m256 vzero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 q = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(src + i), vinv),
                             vz);
    const __m256 ge = _mm256_cmp_ps(q, vzero, _CMP_GE_OQ);
    q = _mm256_and_ps(ge, _mm256_add_ps(q, vhalf));
    q = _mm256_min_ps(q, vqmax);
    const __m256i qi = _mm256_cvttps_epi32(q);
    // 8 int32 codes in [0, 255] -> 8 bytes (pack via int16).
    const __m128i lo = _mm256_castsi256_si128(qi);
    const __m128i hi = _mm256_extracti128_si256(qi, 1);
    const __m128i w = _mm_packus_epi32(lo, hi);
    const __m128i b = _mm_packus_epi16(w, w);
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) {
    float q = src[i] * inv + z;
    q = q >= 0.0f ? q + 0.5f : 0.0f;
    if (q > qmax) q = qmax;
    dst[i] = static_cast<uint8_t>(q);
  }
}

__attribute__((target("avx2"))) void dequantize_codes_u8_avx2(
    const uint8_t* src, int64_t n, double scale, int32_t zero, float* dst) {
  const __m256d vs = _mm256_set1_pd(scale);
  const __m128i vz = _mm_set1_epi32(zero);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int32_t quad;
    std::memcpy(&quad, src + i, sizeof(quad));
    const __m128i q = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(quad));
    const __m256d d = _mm256_cvtepi32_pd(_mm_sub_epi32(q, vz));
    const __m128 f = _mm256_cvtpd_ps(_mm256_mul_pd(vs, d));
    _mm_storeu_ps(dst + i, f);
  }
  for (; i < n; ++i)
    dst[i] = static_cast<float>(scale * static_cast<double>(src[i] - zero));
}

__attribute__((target("avx2"))) void minmax_u8_avx2(const uint8_t* src,
                                                    int64_t n, uint8_t* out_lo,
                                                    uint8_t* out_hi) {
  __m256i vlo = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i vhi = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    vlo = _mm256_min_epu8(vlo, v);
    vhi = _mm256_max_epu8(vhi, v);
  }
  alignas(32) uint8_t lo32[32], hi32[32];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo32), vlo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hi32), vhi);
  uint8_t lo = 0xFF, hi = 0;
  for (int j = 0; j < 32; ++j) {
    lo = std::min(lo, lo32[j]);
    hi = std::max(hi, hi32[j]);
  }
  for (; i < n; ++i) {
    lo = std::min(lo, src[i]);
    hi = std::max(hi, src[i]);
  }
  *out_lo = lo;
  *out_hi = hi;
}
#endif  // APT_X86

}  // namespace

QuantParams choose_params(float lo, float hi, int bits) {
  APT_CHECK(bits >= 2 && bits <= 32) << "bitwidth out of range: " << bits;
  APT_CHECK(std::isfinite(lo) && std::isfinite(hi) && lo <= hi)
      << "bad range [" << lo << ", " << hi << "]";

  // Include zero so it is exactly representable (needed for padding /
  // sparse weights), matching the affine scheme of Jacob et al.
  double dlo = std::min<double>(lo, 0.0);
  double dhi = std::max<double>(hi, 0.0);
  if (dhi - dlo < 1e-12) {  // degenerate: all values equal (and == 0)
    dhi = dlo + 1e-12;
  }

  QuantParams p;
  p.bits = bits;
  const double levels = static_cast<double>(max_code(bits));  // 2^k - 1
  p.scale = (dhi - dlo) / levels;

  // Nudge the zero point onto an integer code inside [0, 2^k - 1].
  const double z_real = -dlo / p.scale;
  p.zero_point = std::clamp<int64_t>(
      static_cast<int64_t>(std::llround(z_real)), 0, max_code(bits));
  return p;
}

QuantParams choose_params(const Tensor& t, int bits) {
  APT_CHECK(t.numel() > 0) << "cannot derive range from an empty tensor";
  return choose_params(t.min(), t.max(), bits);
}

int64_t round_steps(double x, RoundMode mode, double u01) {
  switch (mode) {
    case RoundMode::kNearest:
      return std::llround(x);
    case RoundMode::kTrunc:
      return static_cast<int64_t>(std::trunc(x));
    case RoundMode::kStochastic: {
      const double f = std::floor(x);
      const double frac = x - f;
      return static_cast<int64_t>(f) + (u01 < frac ? 1 : 0);
    }
  }
  return 0;  // unreachable
}

void quantize_codes_u8_scalar(const float* src, int64_t n,
                              const QuantParams& p, uint8_t* dst) {
  APT_CHECK(p.bits <= 8)
      << "quantize_codes_u8 needs an 8-bit-or-narrower grid, got " << p.bits;
  const float inv = static_cast<float>(1.0 / p.scale);
  const float z = static_cast<float>(p.zero_point);
  const float qmax = static_cast<float>(max_code(p.bits));
  for (int64_t i = 0; i < n; ++i) {
    float q = src[i] * inv + z;
    // Below-range (and NaN) saturates to code 0; the +0.5/truncate pair
    // rounds non-negative values half away from zero.
    q = q >= 0.0f ? q + 0.5f : 0.0f;
    if (q > qmax) q = qmax;  // above-range and +Inf saturate
    dst[i] = static_cast<uint8_t>(q);
  }
}

void quantize_codes_u8(const float* src, int64_t n, const QuantParams& p,
                       uint8_t* dst) {
#if APT_X86
  if (cpu_has_avx2_fma()) {
    APT_CHECK(p.bits <= 8)
        << "quantize_codes_u8 needs an 8-bit-or-narrower grid, got "
        << p.bits;
    quantize_codes_u8_avx2(src, n, static_cast<float>(1.0 / p.scale),
                           static_cast<float>(p.zero_point),
                           static_cast<float>(max_code(p.bits)), dst);
    return;
  }
#endif
  quantize_codes_u8_scalar(src, n, p, dst);
}

void dequantize_codes_u8(const uint8_t* src, int64_t n, const QuantParams& p,
                         float* dst) {
#if APT_X86
  if (cpu_has_avx2_fma()) {
    dequantize_codes_u8_avx2(src, n, p.scale,
                             static_cast<int32_t>(p.zero_point), dst);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(p.scale *
                                static_cast<double>(src[i] - p.zero_point));
}

std::pair<uint8_t, uint8_t> minmax_u8(const uint8_t* src, int64_t n) {
  APT_CHECK(n > 0) << "minmax_u8 over an empty plane";
#if APT_X86
  if (cpu_has_avx2_fma()) {
    uint8_t lo, hi;
    minmax_u8_avx2(src, n, &lo, &hi);
    return {lo, hi};
  }
#endif
  uint8_t lo = src[0], hi = src[0];
  for (int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, src[i]);
    hi = std::max(hi, src[i]);
  }
  return {lo, hi};
}

int64_t quantize_value(float r, const QuantParams& p, RoundMode mode) {
  const double q = static_cast<double>(r) / p.scale +
                   static_cast<double>(p.zero_point);
  // Stochastic quantisation of raw values is not used by the library
  // (only update *steps* are rounded stochastically), so u01 = 0.5 keeps
  // this deterministic if ever requested.
  const int64_t code = round_steps(q, mode, 0.5);
  return std::clamp<int64_t>(code, 0, max_code(p.bits));
}

}  // namespace apt::quant
