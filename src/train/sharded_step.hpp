// Intra-step data-parallel execution engine.
//
// One training step (forward, loss, backward, gradient reduction) over one
// minibatch, with the batch split into contiguous sample shards that run
// concurrently through the model's `forward_sharded`/`backward_sharded`
// entry points (nn/shard.hpp).
//
// Determinism contract — bit-identical results for any worker count:
//  * the shard decomposition is a pure function of the batch size and the
//    configured shard grain (never of num_workers or the machine);
//  * every shard accumulates parameter gradients into its own buffers
//    (Parameter::shard_grads), reduced into Parameter::grad in shard
//    order after backward;
//  * losses, hit counts, BatchNorm statistics and activation ranges are
//    likewise merged from per-shard values in shard order.
// `num_workers` therefore only schedules: 1 runs the same shards in order
// on the calling thread (the serial reference path), larger values let up
// to that many shards run concurrently on the global pool.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/loader.hpp"
#include "nn/layer.hpp"
#include "nn/softmax_xent.hpp"

namespace apt::train {

struct ShardedStepConfig {
  /// Concurrency cap for the step: 0 = one worker per pool thread,
  /// 1 = the serial reference path. Never affects numerics.
  int num_workers = 0;
  /// Target samples per gradient shard. The decomposition knob: shard
  /// count = ceil(batch / max(shard_grain, ceil(batch / kMaxShards))).
  /// Changing it changes reduction order (and therefore bits); changing
  /// num_workers does not.
  int64_t shard_grain = 8;
};

class ShardedStep {
 public:
  ShardedStep(nn::Layer& model, const ShardedStepConfig& cfg);

  struct Result {
    double mean_loss = 0.0;  ///< sample-weighted mean over the batch
    int64_t hits = 0;        ///< argmax(logits) == label count
  };

  /// Runs one step: forward, (optional) `after_forward` on the
  /// coordinator, per-shard softmax cross-entropy, backward, and the
  /// shard-ordered gradient reduction into Parameter::grad. Gradients
  /// accumulate into whatever Parameter::grad already holds, exactly like
  /// a plain backward call.
  Result run(const data::Batch& batch,
             const std::function<void()>& after_forward = nullptr);

  /// Shard count for a given batch size (exposed for tests/benches).
  int64_t shards_for(int64_t batch_size) const;

 private:
  void prepare_sinks(int64_t shards);
  void reduce_grads(int64_t shards);

  nn::Layer& model_;
  ShardedStepConfig cfg_;
  std::vector<nn::Parameter*> params_;
  std::vector<nn::SoftmaxCrossEntropy> losses_;
};

}  // namespace apt::train
