// Metric helpers and the per-run History record benches consume.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace apt::train {

/// Exponential moving average with bias-corrected warm start: the first
/// observation initialises the average (Alg. 2's "moving average on Gavg").
class MovingAverage {
 public:
  explicit MovingAverage(double momentum = 0.8) : momentum_(momentum) {}

  void observe(double x) {
    value_ = initialized_ ? momentum_ * value_ + (1.0 - momentum_) * x : x;
    initialized_ = true;
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double momentum_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// One epoch's record.
struct EpochStats {
  int epoch = 0;
  double lr = 0.0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double cumulative_energy_j = 0.0;   ///< training energy so far (joules)
  double model_memory_bits = 0.0;     ///< training-time model size
  double underflow_fraction = 0.0;    ///< share of updates that underflowed
  std::vector<int> unit_bits;         ///< per-unit bitwidths (empty if fp32)
  std::vector<double> unit_gavg;      ///< per-unit smoothed Gavg
};

/// Full training history of one run.
struct History {
  std::vector<std::string> unit_names;
  std::vector<EpochStats> epochs;

  double final_test_accuracy() const {
    return epochs.empty() ? 0.0 : epochs.back().test_accuracy;
  }
  double total_energy_j() const {
    return epochs.empty() ? 0.0 : epochs.back().cumulative_energy_j;
  }
  double best_test_accuracy() const {
    double best = 0.0;
    for (const auto& e : epochs) best = std::max(best, e.test_accuracy);
    return best;
  }
  /// Energy spent up to (and including) the first epoch whose test
  /// accuracy reaches `target`; negative if never reached.
  double energy_to_reach(double target) const {
    for (const auto& e : epochs)
      if (e.test_accuracy >= target) return e.cumulative_energy_j;
    return -1.0;
  }
  /// Peak training-time model memory across epochs, in bits.
  double peak_memory_bits() const {
    double peak = 0.0;
    for (const auto& e : epochs) peak = std::max(peak, e.model_memory_bits);
    return peak;
  }
};

}  // namespace apt::train
