// Learning-rate schedules (paper §IV: step decay, optional warmup).
#pragma once

#include <vector>

#include "base/check.hpp"

namespace apt::train {

/// Piecewise-constant decay with optional constant warmup:
///   lr(e) = warmup_lr                      for e < warmup_epochs
///         = base_lr * gamma^(#milestones <= e) otherwise
///
/// The paper's CIFAR-10 recipe is base 0.1, /10 at epochs 100 and 150; the
/// CIFAR-100 recipe additionally warms up at 0.01 for the first 2 epochs.
class StepDecaySchedule {
 public:
  StepDecaySchedule(double base_lr, std::vector<int> milestones,
                    double gamma = 0.1, int warmup_epochs = 0,
                    double warmup_lr = 0.01)
      : base_lr_(base_lr),
        milestones_(std::move(milestones)),
        gamma_(gamma),
        warmup_epochs_(warmup_epochs),
        warmup_lr_(warmup_lr) {
    APT_CHECK(base_lr > 0 && gamma > 0) << "bad schedule";
  }

  double lr_at(int epoch) const {
    if (epoch < warmup_epochs_) return warmup_lr_;
    double lr = base_lr_;
    for (int m : milestones_)
      if (epoch >= m) lr *= gamma_;
    return lr;
  }

  /// Scales every milestone (and implicitly the horizon) by `factor` —
  /// used to shrink the paper's 200-epoch recipe to CPU-sized runs while
  /// preserving the decay shape.
  StepDecaySchedule scaled(double factor) const {
    std::vector<int> ms;
    ms.reserve(milestones_.size());
    for (int m : milestones_)
      ms.push_back(static_cast<int>(m * factor + 0.5));
    return StepDecaySchedule(base_lr_, ms, gamma_, warmup_epochs_, warmup_lr_);
  }

 private:
  double base_lr_;
  std::vector<int> milestones_;
  double gamma_;
  int warmup_epochs_;
  double warmup_lr_;
};

}  // namespace apt::train
