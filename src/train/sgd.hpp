// SGD with momentum and weight decay, representation-aware.
//
// The optimiser composes the step δ = lr · v in float (velocity and decay
// are training *tricks* the paper explicitly keeps outside the metric and
// the grid), then hands δ to the parameter's Representation, which decides
// how it lands on storage — Eq. 3 grid truncation for APT parameters,
// plain subtraction for fp32, master-copy update for baselines.
#pragma once

#include <functional>
#include <vector>

#include "nn/parameter.hpp"
#include "train/optimizer.hpp"

namespace apt::train {

struct SgdConfig {
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

/// Optional per-parameter gradient transform applied before the velocity
/// update (e.g. TernGrad's ternary gradient quantisation).
using GradTransform = std::function<void(const nn::Parameter&, Tensor& grad)>;

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter*> params, const SgdConfig& cfg,
      GradTransform grad_transform = nullptr);

  void zero_grad() override;

  /// One optimisation step at learning rate `lr`. Returns aggregate update
  /// statistics (underflow/clamp counters from quantised representations).
  quant::UpdateStats step(double lr) override;

  const std::vector<nn::Parameter*>& params() const { return params_; }

 private:
  std::vector<nn::Parameter*> params_;
  SgdConfig cfg_;
  GradTransform grad_transform_;
  std::vector<Tensor> velocity_;
  // Per-parameter scratch reused across steps (grad working copy and the
  // composed step δ): steady-state steps allocate nothing.
  std::vector<Tensor> grad_scratch_;
  std::vector<Tensor> step_scratch_;
};

}  // namespace apt::train
