#include "train/baselines.hpp"

#include <cmath>

#include "quant/fake_quant.hpp"

namespace apt::train {

MasterCopyRepresentation::MasterCopyRepresentation(nn::Parameter& p, int bits)
    : master_(p.value.clone()), bits_(bits) {
  refresh_view(p);
}

void MasterCopyRepresentation::refresh_view(nn::Parameter& p) {
  // Per-step range fit on the master (as DoReFa-style schemes do).
  const float lo = master_.min(), hi = master_.max();
  const quant::QuantParams qp = quant::choose_params(lo, hi, bits_);
  epsilon_ = qp.epsilon();
  const float* m = master_.data();
  float* v = p.value.data();
  for (int64_t i = 0; i < master_.numel(); ++i)
    v[i] = qp.dequantize(quant::quantize_value(m[i], qp));
}

quant::UpdateStats MasterCopyRepresentation::apply_step(nn::Parameter& p,
                                                        const Tensor& step) {
  APT_CHECK(step.shape() == master_.shape()) << "step shape mismatch";
  const Tensor before = p.value.clone();
  master_ -= step;
  refresh_view(p);

  quant::UpdateStats s;
  s.total = p.numel();
  for (int64_t i = 0; i < p.numel(); ++i) {
    const bool stepped = step[i] != 0.0f;
    const bool visible = p.value[i] != before[i];
    if (visible) ++s.moved;
    // The master moved but the quantised view did not: the view underflowed
    // (invisible progress is parked in the master — the memory being paid).
    if (stepped && !visible) ++s.underflowed;
  }
  return s;
}

void MasterCopyRepresentation::set_bits(nn::Parameter& p, int k) {
  bits_ = k;
  refresh_view(p);
}

void MasterCopyRepresentation::refit_range(nn::Parameter& p) {
  // Re-sync storage from the parameter's float values (the contract used
  // by checkpoint loading); outside that path the master is authoritative
  // and this is never called.
  master_ = p.value.clone();
  refresh_view(p);
}

void attach_master_copy(nn::Layer& model, int bits) {
  for (nn::Layer* leaf : nn::leaves_of(model))
    for (nn::Parameter* p : leaf->parameters())
      p->rep = std::make_shared<MasterCopyRepresentation>(*p, bits);
}

GradTransform make_terngrad_transform(uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  return [rng](const nn::Parameter&, Tensor& g) {
    const float s = g.abs_max();
    if (s == 0.0f) return;
    for (int64_t i = 0; i < g.numel(); ++i) {
      const float p = std::fabs(g[i]) / s;
      const float sign = g[i] > 0.0f ? 1.0f : (g[i] < 0.0f ? -1.0f : 0.0f);
      g[i] = rng->bernoulli(p) ? sign * s : 0.0f;
    }
  };
}

}  // namespace apt::train
