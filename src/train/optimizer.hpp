// Optimiser interface shared by SGD and Adam so the Trainer (and the APT
// controller, which never looks at the optimiser at all) are agnostic to
// the update rule — the paper's §III-B design point.
#pragma once

#include "nn/parameter.hpp"

namespace apt::train {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void zero_grad() = 0;
  /// One step at learning rate lr; returns underflow/clamp statistics
  /// aggregated over all parameters.
  virtual quant::UpdateStats step(double lr) = 0;
};

}  // namespace apt::train
