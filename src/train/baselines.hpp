// Representative reimplementations of the comparison methods in Table I.
//
// The axis Table I isolates is the *model precision in BPROP*: most prior
// quantised-training methods (BNN, TWN, TTQ, DoReFa-Net — and TernGrad for
// weights) keep an fp32 master copy that absorbs every update, so they save
// no training memory; WAGE updates low-bit weights directly with stochastic
// rounding; APT updates quantised weights directly with adaptive bitwidth.
//
//  * `MasterCopyRepresentation`  — fp32 master + k-bit compute view,
//    re-quantised from the master every step (BNN/DoReFa family).
//  * `make_terngrad_transform`   — stochastic ternary gradient quantisation
//    applied before the velocity update (TernGrad), weights stay fp32.
//  * The WAGE-like row is `core::GridRepresentation` at fixed k = 8 with
//    stochastic rounding (no master copy), assembled in the bench.
#pragma once

#include <memory>

#include "base/rng.hpp"
#include "nn/layer.hpp"
#include "nn/parameter.hpp"
#include "train/sgd.hpp"

namespace apt::train {

/// fp32 master weights with a k-bit quantised compute view. `apply_step`
/// updates the master in float and re-quantises the view, so learning never
/// underflows — at the cost of keeping 32 + k bits per weight during
/// training (the "no savings in memory" column of Table I).
class MasterCopyRepresentation : public nn::Representation {
 public:
  MasterCopyRepresentation(nn::Parameter& p, int bits);

  quant::UpdateStats apply_step(nn::Parameter& p, const Tensor& step) override;
  double epsilon() const override { return epsilon_; }
  int bits() const override { return bits_; }
  void set_bits(nn::Parameter& p, int k) override;
  void refit_range(nn::Parameter& p) override;
  int64_t memory_bits(const nn::Parameter& p) const override {
    return p.numel() * (32 + bits_);
  }
  std::string describe() const override {
    return "fp32-master+" + std::to_string(bits_) + "bit-view";
  }

 private:
  void refresh_view(nn::Parameter& p);

  Tensor master_;
  int bits_;
  double epsilon_ = 0.0;
};

/// Attaches MasterCopyRepresentation(k) to every learnable parameter.
void attach_master_copy(nn::Layer& model, int bits);

/// TernGrad: g -> s · sign(g) · b with s = max|g| and b ~ Bernoulli(|g|/s),
/// applied per tensor. Unbiased in expectation; weights remain fp32.
GradTransform make_terngrad_transform(uint64_t seed);

}  // namespace apt::train
