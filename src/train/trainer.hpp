// The training loop (paper Alg. 2's outer structure) with hook points for
// the APT controller, plus energy/memory accounting on every iteration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cost/energy.hpp"
#include "data/loader.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax_xent.hpp"
#include "train/adam.hpp"
#include "train/metrics.hpp"
#include "train/schedule.hpp"
#include "train/sgd.hpp"
#include "train/sharded_step.hpp"

namespace apt::train {

/// A "layer" in the paper's sense: a leaf module with learnable
/// parameters. The APT policy assigns one bitwidth per unit; the cost
/// model charges per unit.
struct Unit {
  std::string name;
  nn::Layer* layer = nullptr;
  std::vector<nn::Parameter*> params;
  cost::LayerProfile profile;
};

class Trainer;

/// Observation points for training extensions (the APT controller).
class TrainHook {
 public:
  virtual ~TrainHook() = default;
  /// After unit profiles exist, before the first iteration.
  virtual void on_train_begin(Trainer&) {}
  /// After backward (fresh gradients in Parameter::grad), before the
  /// optimiser consumes them. `iter` counts iterations within the epoch.
  virtual void on_gradients(Trainer&, int64_t iter) { (void)iter; }
  /// After the epoch's stats are recorded (between epochs — where Alg. 2
  /// adjusts precision). Mutations here affect the next epoch.
  virtual void on_epoch_end(Trainer&, int epoch) { (void)epoch; }
};

/// Which update rule the Trainer instantiates (both land their steps
/// through each parameter's Representation, so APT works with either).
enum class OptimizerKind { kSgd, kAdam };

struct TrainerConfig {
  int epochs = 200;
  StepDecaySchedule schedule{0.1, {100, 150}};
  OptimizerKind optimizer = OptimizerKind::kSgd;  // the paper trains with SGD
  SgdConfig sgd{};
  AdamConfig adam{};
  int64_t eval_batch = 256;
  bool verbose = false;
  cost::EnergyModel energy{};
  /// Data-parallel step concurrency: 0 = one worker per pool thread
  /// (default), 1 = the serial reference path that walks the same shards
  /// in order on the calling thread. Results are bit-identical for every
  /// value — the shard decomposition below, not the worker count, fixes
  /// all reduction orders.
  int num_workers = 0;
  /// Target samples per gradient shard (see ShardedStepConfig). This is
  /// the knob that changes numerics; set it >= the batch size to recover
  /// the single-shard whole-batch step exactly.
  int64_t shard_grain = 8;
};

/// Result of an evaluation pass.
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

/// Runs evaluation (training=false) over a labelled set in mini-batches.
EvalResult evaluate(nn::Layer& model, const Tensor& inputs,
                    const std::vector<int32_t>& labels, int64_t batch);

class Trainer {
 public:
  /// `test_inputs/test_labels` are evaluated once per epoch with no
  /// augmentation (single original view, as in the paper).
  Trainer(nn::Layer& model, data::DataLoader& train_loader,
          Tensor test_inputs, std::vector<int32_t> test_labels,
          const TrainerConfig& cfg, GradTransform grad_transform = nullptr);

  /// Hooks are invoked in registration order. Not owned.
  void add_hook(TrainHook* hook) { hooks_.push_back(hook); }

  History run();

  // ---- accessors for hooks and cost accounting --------------------------
  std::vector<Unit>& units() { return units_; }
  nn::Layer& model() { return model_; }
  Optimizer& optimizer() { return *optimizer_; }
  int epoch() const { return epoch_; }
  double current_lr() const { return lr_; }
  const TrainerConfig& config() const { return cfg_; }
  /// Valid during on_epoch_end: lets hooks annotate the epoch record
  /// (the controller stores per-unit Gavg here).
  EpochStats& current_epoch_stats() { return *current_stats_; }

  /// Current bitwidth of a unit (32 when parameters are plain float).
  static int unit_bits(const Unit& u);
  /// Whether the unit's representation keeps an fp32 master copy.
  static bool unit_has_master(const Unit& u);

  /// Training-time model memory in bits at current bitwidths.
  double model_memory_bits() const;

 private:
  void build_units();
  void fill_profiles();
  double iteration_energy_pj(int64_t batch) const;

  nn::Layer& model_;
  data::DataLoader& loader_;
  Tensor test_inputs_;
  std::vector<int32_t> test_labels_;
  TrainerConfig cfg_;
  std::vector<Unit> units_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<ShardedStep> step_;
  std::vector<TrainHook*> hooks_;

  int epoch_ = 0;
  double lr_ = 0.0;
  double energy_pj_ = 0.0;
  bool profiles_ready_ = false;
  EpochStats* current_stats_ = nullptr;
};

}  // namespace apt::train
