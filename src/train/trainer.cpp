#include "train/trainer.hpp"

#include <cstdio>

namespace apt::train {

EvalResult evaluate(nn::Layer& model, const Tensor& inputs,
                    const std::vector<int32_t>& labels, int64_t batch) {
  const int64_t n = inputs.dim(0);
  APT_CHECK(n == static_cast<int64_t>(labels.size())) << "eval size mismatch";
  nn::SoftmaxCrossEntropy loss;
  double loss_sum = 0.0;
  int64_t hits = 0;
  const int64_t row = inputs.numel() / std::max<int64_t>(n, 1);

  for (int64_t begin = 0; begin < n; begin += batch) {
    const int64_t b = std::min<int64_t>(batch, n - begin);
    std::vector<int64_t> dims = inputs.shape().dims();
    dims[0] = b;
    Tensor chunk{Shape(dims)};
    std::memcpy(chunk.data(), inputs.data() + begin * row,
                sizeof(float) * static_cast<size_t>(b * row));
    std::vector<int32_t> chunk_labels(labels.begin() + begin,
                                      labels.begin() + begin + b);
    const Tensor logits = model.forward(chunk, /*training=*/false);
    loss_sum += static_cast<double>(loss.forward(logits, chunk_labels)) * b;
    for (int64_t i = 0; i < b; ++i)
      if (loss.predictions()[static_cast<size_t>(i)] ==
          chunk_labels[static_cast<size_t>(i)])
        ++hits;
  }
  return {loss_sum / static_cast<double>(n),
          static_cast<double>(hits) / static_cast<double>(n)};
}

Trainer::Trainer(nn::Layer& model, data::DataLoader& loader,
                 Tensor test_inputs, std::vector<int32_t> test_labels,
                 const TrainerConfig& cfg, GradTransform grad_transform)
    : model_(model),
      loader_(loader),
      test_inputs_(std::move(test_inputs)),
      test_labels_(std::move(test_labels)),
      cfg_(cfg) {
  build_units();
  std::vector<nn::Parameter*> all;
  for (auto& u : units_)
    for (auto* p : u.params) all.push_back(p);
  if (cfg_.optimizer == OptimizerKind::kAdam) {
    optimizer_ = std::make_unique<Adam>(std::move(all), cfg_.adam,
                                        std::move(grad_transform));
  } else {
    optimizer_ = std::make_unique<Sgd>(std::move(all), cfg_.sgd,
                                       std::move(grad_transform));
  }
  step_ = std::make_unique<ShardedStep>(
      model_, ShardedStepConfig{cfg_.num_workers, cfg_.shard_grain});
}

void Trainer::build_units() {
  for (nn::Layer* leaf : nn::leaves_of(model_)) {
    auto params = leaf->parameters();
    if (params.empty()) continue;
    Unit u;
    u.name = leaf->name();
    u.layer = leaf;
    u.params = std::move(params);
    for (auto* p : u.params) u.profile.params += p->numel();
    units_.push_back(std::move(u));
  }
  APT_CHECK(!units_.empty()) << "model has no learnable parameters";
}

void Trainer::fill_profiles() {
  for (auto& u : units_) {
    u.profile.macs_per_sample = u.layer->macs_per_sample();
    u.profile.act_elems_per_sample = u.layer->out_elems_per_sample();
  }
  profiles_ready_ = true;
}

int Trainer::unit_bits(const Unit& u) {
  // All parameters of a unit share one bitwidth (the APT controller
  // enforces this); plain float parameters count as 32-bit.
  return u.params.front()->rep ? u.params.front()->rep->bits() : 32;
}

bool Trainer::unit_has_master(const Unit& u) {
  const auto& rep = u.params.front()->rep;
  return rep && rep->memory_bits(*u.params.front()) >
                    rep->bits() * u.params.front()->numel();
}

double Trainer::iteration_energy_pj(int64_t batch) const {
  double pj = 0.0;
  for (const auto& u : units_) {
    pj += cost::layer_iteration_cost(cfg_.energy, u.profile, unit_bits(u),
                                     batch, unit_has_master(u))
              .total_pj();
  }
  return pj;
}

double Trainer::model_memory_bits() const {
  double bits = 0.0;
  for (const auto& u : units_)
    for (const auto* p : u.params)
      bits += p->rep ? static_cast<double>(p->rep->memory_bits(*p))
                     : 32.0 * static_cast<double>(p->numel());
  return bits;
}

History Trainer::run() {
  History history;
  for (const auto& u : units_) history.unit_names.push_back(u.name);

  bool began = false;
  for (epoch_ = 0; epoch_ < cfg_.epochs; ++epoch_) {
    lr_ = cfg_.schedule.lr_at(epoch_);
    double loss_sum = 0.0;
    int64_t seen = 0, hits = 0;
    quant::UpdateStats epoch_stats;

    loader_.for_each_batch([&](int64_t iter, const data::Batch& batch) {
      optimizer_->zero_grad();
      // The sharded step runs forward + loss + backward and reduces the
      // per-shard gradients into Parameter::grad in shard order, so the
      // hooks below observe merged whole-batch gradients exactly once.
      const ShardedStep::Result res = step_->run(batch, [&] {
        if (!profiles_ready_) {
          fill_profiles();  // shapes known after the first forward
        }
        if (!began) {
          for (auto* h : hooks_) h->on_train_begin(*this);
          began = true;
        }
      });

      for (auto* h : hooks_) h->on_gradients(*this, iter);
      epoch_stats.accumulate(optimizer_->step(lr_));

      loss_sum += res.mean_loss * static_cast<double>(batch.size());
      seen += batch.size();
      hits += res.hits;
      energy_pj_ += iteration_energy_pj(batch.size());
    });

    EpochStats stats;
    stats.epoch = epoch_;
    stats.lr = lr_;
    stats.train_loss = loss_sum / static_cast<double>(seen);
    stats.train_accuracy =
        static_cast<double>(hits) / static_cast<double>(seen);
    const EvalResult ev =
        evaluate(model_, test_inputs_, test_labels_, cfg_.eval_batch);
    stats.test_accuracy = ev.accuracy;
    stats.cumulative_energy_j = energy_pj_ * 1e-12;
    stats.model_memory_bits = model_memory_bits();
    stats.underflow_fraction = epoch_stats.underflow_fraction();
    for (const auto& u : units_) stats.unit_bits.push_back(unit_bits(u));

    history.epochs.push_back(std::move(stats));
    current_stats_ = &history.epochs.back();
    for (auto* h : hooks_) h->on_epoch_end(*this, epoch_);
    current_stats_ = nullptr;

    if (cfg_.verbose) {
      const auto& e = history.epochs.back();
      std::printf(
          "epoch %3d  lr %.4f  loss %.4f  train %.4f  test %.4f  "
          "E %.3f J  mem %.2f Mb  uf %.3f\n",
          e.epoch, e.lr, e.train_loss, e.train_accuracy, e.test_accuracy,
          e.cumulative_energy_j, e.model_memory_bits / 1e6,
          e.underflow_fraction);
      std::fflush(stdout);
    }
  }
  return history;
}

}  // namespace apt::train
