#include "train/sharded_step.hpp"

#include <algorithm>
#include <cstring>

#include "base/rng.hpp"
#include "base/thread_pool.hpp"
#include "nn/shard.hpp"

namespace apt::train {

namespace {
int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

ShardedStep::ShardedStep(nn::Layer& model, const ShardedStepConfig& cfg)
    : model_(model), cfg_(cfg), params_(model.parameters()) {
  APT_CHECK(cfg_.shard_grain >= 1)
      << "shard_grain must be >= 1, got " << cfg_.shard_grain;
  APT_CHECK(cfg_.num_workers >= 0)
      << "num_workers must be >= 0, got " << cfg_.num_workers;
}

int64_t ShardedStep::shards_for(int64_t batch_size) const {
  if (batch_size <= 0) return 0;
  // Grain rises (never falls) so the count fits kMaxShards: still a pure
  // function of (batch_size, shard_grain).
  const int64_t grain = std::max(
      cfg_.shard_grain, ceil_div(batch_size, nn::kMaxShards));
  return ceil_div(batch_size, grain);
}

void ShardedStep::prepare_sinks(int64_t shards) {
  for (nn::Parameter* p : params_) {
    if (static_cast<int64_t>(p->shard_grads.size()) < shards) {
      p->shard_grads.reserve(static_cast<size_t>(shards));
      while (static_cast<int64_t>(p->shard_grads.size()) < shards)
        p->shard_grads.emplace_back(p->grad.shape());  // zero-initialised
    }
  }
}

void ShardedStep::reduce_grads(int64_t shards) {
  for (nn::Parameter* p : params_) {
    float* grad = p->grad.data();
    const int64_t numel = p->numel();
    // Element-wise sums over the shard buffers in shard order, draining
    // each sink in the same pass (so a following run() accumulates
    // afresh, matching plain backward's "accumulate into grad"
    // semantics, without a second sweep over every buffer). Chunking
    // across elements cannot change any element's summation order, so
    // this is deterministic for any pool size.
    auto reduce_range = [&](int64_t e0, int64_t e1) {
      for (int64_t s = 0; s < shards; ++s) {
        float* sg = p->shard_grads[static_cast<size_t>(s)].data();
        for (int64_t e = e0; e < e1; ++e) {
          grad[e] += sg[e];
          sg[e] = 0.0f;
        }
      }
    };
    // Small parameters (the common case: conv filters, biases) skip the
    // pool dispatch entirely — one queue round-trip per parameter per
    // step costs more than the reduction itself.
    if (numel < (1 << 12)) {
      reduce_range(0, numel);
    } else {
      ThreadPool::global().parallel_for(0, numel, reduce_range, 1 << 12);
    }
  }
}

ShardedStep::Result ShardedStep::run(
    const data::Batch& batch, const std::function<void()>& after_forward) {
  const int64_t n = batch.size();
  APT_CHECK(n > 0) << "empty batch";
  const int64_t shards = shards_for(n);
  const int64_t grain = ceil_div(n, shards);
  const int workers = cfg_.num_workers == 0
                          ? static_cast<int>(ThreadPool::global().size()) + 1
                          : cfg_.num_workers;

  // Advance the stochastic-rounding step counter exactly once per step,
  // here on the coordinator before any shard task exists: every gradient
  // quantiser in this step then keys its counter stream off the same
  // value, regardless of worker count or shard decomposition. The grain
  // is published through the session so layers can recover each shard's
  // batch-global sample offset (s * grain) for element indexing.
  sr_advance_step();
  nn::ShardSession session(static_cast<int>(shards), workers, grain);
  if (shards > 1) prepare_sinks(shards);

  // Slice the batch into contiguous shards. Boundaries depend only on
  // (n, grain); the last shard absorbs the remainder. The single-shard
  // path shares the batch storage outright (Tensor copies are shallow)
  // — no copy on the legacy-equivalent path.
  std::vector<Tensor> xs(static_cast<size_t>(shards));
  std::vector<std::vector<int32_t>> label_slices(
      shards > 1 ? static_cast<size_t>(shards) : 0);
  std::vector<const std::vector<int32_t>*> labels(
      static_cast<size_t>(shards));
  if (shards == 1) {
    xs[0] = batch.inputs;
    labels[0] = &batch.labels;
  } else {
    const int64_t row = batch.inputs.numel() / n;
    std::vector<int64_t> dims = batch.inputs.shape().dims();
    for (int64_t s = 0; s < shards; ++s) {
      const int64_t b = s * grain;
      const int64_t e = std::min(n, b + grain);
      dims[0] = e - b;
      Tensor x{Shape(dims)};
      std::memcpy(x.data(), batch.inputs.data() + b * row,
                  sizeof(float) * static_cast<size_t>((e - b) * row));
      xs[static_cast<size_t>(s)] = std::move(x);
      label_slices[static_cast<size_t>(s)].assign(batch.labels.begin() + b,
                                                  batch.labels.begin() + e);
      labels[static_cast<size_t>(s)] = &label_slices[static_cast<size_t>(s)];
    }
  }

  const std::vector<Tensor> logits = model_.forward_sharded(xs, true);
  if (after_forward) after_forward();

  // Per-shard loss objects: forward caches softmax state, so shards must
  // not share one. The backward gradient is rescaled from the shard mean
  // to the batch mean (n_s / n) so the reduced gradients equal the
  // whole-batch mean-loss gradient.
  if (losses_.size() < static_cast<size_t>(shards))
    losses_.resize(static_cast<size_t>(shards));
  std::vector<double> shard_loss(static_cast<size_t>(shards), 0.0);
  std::vector<int64_t> shard_hits(static_cast<size_t>(shards), 0);
  std::vector<Tensor> dys(static_cast<size_t>(shards));
  nn::shard_parallel(static_cast<int>(shards), [&](int s) {
    const auto su = static_cast<size_t>(s);
    const std::vector<int32_t>& shard_labels = *labels[su];
    shard_loss[su] = losses_[su].forward(logits[su], shard_labels);
    Tensor dy = losses_[su].backward();
    const auto w =
        static_cast<float>(shard_labels.size()) / static_cast<float>(n);
    if (w != 1.0f) dy.scale(w);
    dys[su] = std::move(dy);
    const auto& preds = losses_[su].predictions();
    int64_t hits = 0;
    for (size_t i = 0; i < shard_labels.size(); ++i)
      if (preds[i] == shard_labels[i]) ++hits;
    shard_hits[su] = hits;
  });

  model_.backward_sharded(dys);
  if (shards > 1) reduce_grads(shards);

  Result r;
  for (int64_t s = 0; s < shards; ++s) {
    const auto su = static_cast<size_t>(s);
    r.mean_loss += shard_loss[su] *
                   (static_cast<double>(labels[su]->size()) /
                    static_cast<double>(n));
    r.hits += shard_hits[su];
  }
  return r;
}

}  // namespace apt::train
