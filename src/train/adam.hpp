// Adam optimiser (Kingma & Ba) over the same Representation seam as SGD.
//
// Most Table-I baselines train with Adam; providing it demonstrates the
// paper's §III-B claim that APT composes with "training tricks or
// sophisticated optimisers": Gavg reads raw gradients, and the optimiser's
// composed step δ still lands through the parameter's representation
// (Eq. 3 grid truncation for APT parameters).
#pragma once

#include <vector>

#include "nn/parameter.hpp"
#include "train/optimizer.hpp"
#include "train/sgd.hpp"  // GradTransform

namespace apt::train {

struct AdamConfig {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  ///< L2 (added to the gradient), paper-style
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter*> params, const AdamConfig& cfg,
       GradTransform grad_transform = nullptr);

  void zero_grad() override;

  /// One optimisation step at learning rate `lr` with bias-corrected
  /// moment estimates. Returns aggregate update statistics.
  quant::UpdateStats step(double lr) override;

  const std::vector<nn::Parameter*>& params() const { return params_; }

 private:
  std::vector<nn::Parameter*> params_;
  AdamConfig cfg_;
  GradTransform grad_transform_;
  std::vector<Tensor> m_, v_;
  // Per-parameter scratch reused across steps (grad working copy and the
  // composed step δ): steady-state steps allocate nothing.
  std::vector<Tensor> grad_scratch_;
  std::vector<Tensor> step_scratch_;
  int64_t t_ = 0;
};

}  // namespace apt::train
