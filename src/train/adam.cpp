#include "train/adam.hpp"

#include <cmath>
#include <cstring>

namespace apt::train {

Adam::Adam(std::vector<nn::Parameter*> params, const AdamConfig& cfg,
           GradTransform grad_transform)
    : params_(std::move(params)),
      cfg_(cfg),
      grad_transform_(std::move(grad_transform)) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  grad_scratch_.reserve(params_.size());
  step_scratch_.reserve(params_.size());
  for (auto* p : params_) {
    // Shape agreement is an attach-time invariant; checking it here keeps
    // the per-step loops assertion-free.
    APT_CHECK(p->grad.shape() == p->value.shape())
        << p->name << ": grad shape " << p->grad.shape().str()
        << " != value shape " << p->value.shape().str();
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
    grad_scratch_.emplace_back(p->value.shape());
    step_scratch_.emplace_back(p->value.shape());
  }
}

void Adam::zero_grad() {
  // fill() reuses the existing buffer; nothing is reallocated between
  // steps (shard sinks stay drained by the engine's reduction).
  for (auto* p : params_) p->zero_grad();
}

quant::UpdateStats Adam::step(double lr) {
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));

  quant::UpdateStats total;
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& g = grad_scratch_[i];
    std::memcpy(g.data(), p.grad.data(),
                sizeof(float) * static_cast<size_t>(g.numel()));
    if (grad_transform_) grad_transform_(p, g);
    if (cfg_.weight_decay != 0.0 && p.decay) {
      const float wd = static_cast<float>(cfg_.weight_decay);
      const float* w = p.value.data();
      float* gd = g.data();
      for (int64_t j = 0; j < g.numel(); ++j) gd[j] += wd * w[j];
    }

    float* md = m_[i].data();
    float* vd = v_[i].data();
    const float* gd = g.data();
    Tensor& delta = step_scratch_[i];
    float* dd = delta.data();
    const float b1 = static_cast<float>(cfg_.beta1);
    const float b2 = static_cast<float>(cfg_.beta2);
    for (int64_t j = 0; j < g.numel(); ++j) {
      md[j] = b1 * md[j] + (1.0f - b1) * gd[j];
      vd[j] = b2 * vd[j] + (1.0f - b2) * gd[j] * gd[j];
      const double m_hat = md[j] / bc1;
      const double v_hat = vd[j] / bc2;
      dd[j] = static_cast<float>(lr * m_hat /
                                 (std::sqrt(v_hat) + cfg_.eps));
    }

    const quant::UpdateStats s = p.rep ? p.rep->apply_step(p, delta)
                                       : nn::apply_float_step(p, delta);
    total.accumulate(s);
  }
  return total;
}

}  // namespace apt::train
