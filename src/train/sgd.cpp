#include "train/sgd.hpp"

#include <cstring>

namespace apt::train {

Sgd::Sgd(std::vector<nn::Parameter*> params, const SgdConfig& cfg,
         GradTransform grad_transform)
    : params_(std::move(params)),
      cfg_(cfg),
      grad_transform_(std::move(grad_transform)) {
  velocity_.reserve(params_.size());
  grad_scratch_.reserve(params_.size());
  step_scratch_.reserve(params_.size());
  for (auto* p : params_) {
    // Shape agreement is an attach-time invariant; checking it here keeps
    // the per-step loops assertion-free.
    APT_CHECK(p->grad.shape() == p->value.shape())
        << p->name << ": grad shape " << p->grad.shape().str()
        << " != value shape " << p->value.shape().str();
    velocity_.emplace_back(p->value.shape());
    grad_scratch_.emplace_back(p->value.shape());
    step_scratch_.emplace_back(p->value.shape());
  }
}

void Sgd::zero_grad() {
  // fill() reuses the existing buffer; nothing is reallocated between
  // steps (shard sinks stay drained by the engine's reduction).
  for (auto* p : params_) p->zero_grad();
}

quant::UpdateStats Sgd::step(double lr) {
  quant::UpdateStats total;
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& g = grad_scratch_[i];
    std::memcpy(g.data(), p.grad.data(),
                sizeof(float) * static_cast<size_t>(g.numel()));
    if (grad_transform_) grad_transform_(p, g);
    if (cfg_.weight_decay != 0.0 && p.decay) {
      const float wd = static_cast<float>(cfg_.weight_decay);
      const float* w = p.value.data();
      float* gd = g.data();
      for (int64_t j = 0; j < g.numel(); ++j) gd[j] += wd * w[j];
    }

    Tensor& v = velocity_[i];
    const float mu = static_cast<float>(cfg_.momentum);
    float* vd = v.data();
    const float* gd = g.data();
    for (int64_t j = 0; j < v.numel(); ++j) vd[j] = mu * vd[j] + gd[j];

    Tensor& delta = step_scratch_[i];
    const float flr = static_cast<float>(lr);
    float* dd = delta.data();
    for (int64_t j = 0; j < v.numel(); ++j) dd[j] = flr * vd[j];

    const quant::UpdateStats s = p.rep ? p.rep->apply_step(p, delta)
                                       : nn::apply_float_step(p, delta);
    total.accumulate(s);
  }
  return total;
}

}  // namespace apt::train
