// Analytical training energy & memory model.
//
// Substitute for the paper's measured GPU energy (see DESIGN.md §2). The
// per-operation energies follow widely used 45 nm numbers (Horowitz,
// ISSCC'14): integer multiplier energy scales ~quadratically with
// bitwidth, adders ~linearly, memory traffic ~linearly in bits moved.
// Every figure reports energy *normalised to the fp32 run*, exactly like
// the paper, so only the relative shape of this model matters.
#pragma once

#include <cstdint>

namespace apt::cost {

struct EnergyModel {
  // 45 nm reference energies in picojoules.
  double fp32_mult_pj = 3.7;
  double fp32_add_pj = 0.9;
  double int8_mult_pj = 0.2;
  double int8_add_pj = 0.03;
  /// 32-bit SRAM access (8 KB array); scaled linearly per bit.
  double sram_32b_pj = 5.0;

  /// Energy of one multiply at `bits` precision. bits >= 32 selects the
  /// fp32 unit (the paper treats k = 32 as float training).
  double mult_pj(int bits) const {
    if (bits >= 32) return fp32_mult_pj;
    const double r = static_cast<double>(bits) / 8.0;
    return int8_mult_pj * r * r;
  }

  double add_pj(int bits) const {
    if (bits >= 32) return fp32_add_pj;
    return int8_add_pj * (static_cast<double>(bits) / 8.0);
  }

  /// One multiply-accumulate at `bits`.
  double mac_pj(int bits) const { return mult_pj(bits) + add_pj(bits); }

  /// Moving one bit between SRAM and the datapath.
  double mem_per_bit_pj() const { return sram_32b_pj / 32.0; }
};

/// Static per-layer quantities the energy model combines with the
/// (possibly changing) bitwidth.
struct LayerProfile {
  int64_t macs_per_sample = 0;
  int64_t params = 0;
  int64_t act_elems_per_sample = 0;
};

/// Per-iteration training cost of one layer.
///
/// Terms (batch B, weight bitwidth k):
///   compute:  3 * macs * B * mac(k)        — FPROP + the two BPROP GEMMs
///   weights:  2 * params * k * mem         — weight reads in FPROP/BPROP
///   update:   params * (add(k) + 2k * mem) — read-modify-write on the grid
///   acts:     2 * acts * B * 32 * mem      — activations stay fp32
/// With an fp32 master copy (baselines) the update runs at 32 bits against
/// the master plus a re-quantisation pass: + params*(add(32) + 2*32*mem +
/// mult(k)).
struct IterationCost {
  double compute_pj = 0;
  double weight_traffic_pj = 0;
  double update_pj = 0;
  double activation_traffic_pj = 0;
  double master_overhead_pj = 0;

  double total_pj() const {
    return compute_pj + weight_traffic_pj + update_pj +
           activation_traffic_pj + master_overhead_pj;
  }
};

IterationCost layer_iteration_cost(const EnergyModel& em,
                                   const LayerProfile& profile, int bits,
                                   int64_t batch, bool fp32_master);

/// Training-time memory of one layer's parameters in bits: params * k,
/// plus params * 32 when a fp32 master copy is kept (Table I's point).
int64_t layer_memory_bits(const LayerProfile& profile, int bits,
                          bool fp32_master);

}  // namespace apt::cost
