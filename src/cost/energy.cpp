#include "cost/energy.hpp"

namespace apt::cost {

IterationCost layer_iteration_cost(const EnergyModel& em,
                                   const LayerProfile& profile, int bits,
                                   int64_t batch, bool fp32_master) {
  IterationCost c;
  const double mem = em.mem_per_bit_pj();
  const double macs = static_cast<double>(profile.macs_per_sample) *
                      static_cast<double>(batch);
  const double params = static_cast<double>(profile.params);
  const double acts = static_cast<double>(profile.act_elems_per_sample) *
                      static_cast<double>(batch);

  c.compute_pj = 3.0 * macs * em.mac_pj(bits);
  c.weight_traffic_pj = 2.0 * params * bits * mem;
  c.update_pj = params * (em.add_pj(bits) + 2.0 * bits * mem);
  c.activation_traffic_pj = 2.0 * acts * 32.0 * mem;
  if (fp32_master) {
    // fp32 read-modify-write on the master plus re-quantising the compute
    // copy (one multiply per weight for the scale).
    c.master_overhead_pj =
        params * (em.add_pj(32) + 2.0 * 32.0 * mem + em.mult_pj(bits));
  }
  return c;
}

int64_t layer_memory_bits(const LayerProfile& profile, int bits,
                          bool fp32_master) {
  int64_t total = profile.params * bits;
  if (fp32_master) total += profile.params * 32;
  return total;
}

}  // namespace apt::cost
