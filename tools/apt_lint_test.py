#!/usr/bin/env python3
"""Unit tests for tools/apt_lint.py — the checker itself must be honest:
each rule fires on a minimal violation, stays quiet on the sanctioned
idioms, and respects the allow() escape hatch."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import apt_lint  # noqa: E402


def lint_snippet(code: str, path: str = "src/nn/example.cpp"):
    """Lints `code` as if it lived at `path` inside the repo."""
    with tempfile.TemporaryDirectory() as tmp:
        full = os.path.join(tmp, path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as f:
            f.write(code)
        return apt_lint.check_file(full, path)


def rules_of(violations):
    return sorted(v.rule for v in violations)


class ThreadRule(unittest.TestCase):
    def test_flags_std_thread_async_and_omp(self):
        self.assertEqual(rules_of(lint_snippet("std::thread t(fn);")), ["thread"])
        self.assertEqual(rules_of(lint_snippet("auto f = std::async(fn);")), ["thread"])
        self.assertEqual(rules_of(lint_snippet("#pragma omp parallel for")), ["thread"])
        self.assertEqual(rules_of(lint_snippet("pthread_create(&t, 0, fn, 0);")), ["thread"])

    def test_thread_pool_files_are_exempt(self):
        self.assertEqual(
            lint_snippet("std::thread t(fn);", "src/base/thread_pool.cpp"), [])
        self.assertEqual(
            lint_snippet("std::vector<std::thread> workers_;",
                         "src/base/thread_pool.hpp"), [])

    def test_allow_hatch_same_line_and_previous_line(self):
        self.assertEqual(
            lint_snippet("auto f = std::async(fn);  // apt-lint: allow(thread)"), [])
        self.assertEqual(
            lint_snippet("// apt-lint: allow(thread)\nauto f = std::async(fn);"), [])

    def test_allow_of_other_rule_does_not_suppress(self):
        self.assertEqual(
            rules_of(lint_snippet("std::thread t(fn);  // apt-lint: allow(rng)")),
            ["thread"])

    def test_mention_in_comment_or_string_is_ignored(self):
        self.assertEqual(lint_snippet("// std::async spawns a thread per batch"), [])
        self.assertEqual(lint_snippet('const char* s = "std::thread";'), [])


class RngRule(unittest.TestCase):
    def test_flags_rand_srand_random_device_time_seed(self):
        self.assertEqual(rules_of(lint_snippet("int x = rand();")), ["rng"])
        self.assertEqual(rules_of(lint_snippet("srand(42);")), ["rng"])
        self.assertEqual(rules_of(lint_snippet("std::random_device rd;")), ["rng"])
        self.assertEqual(rules_of(lint_snippet("auto seed = time(nullptr);")), ["rng"])

    def test_counter_rng_is_fine(self):
        self.assertEqual(lint_snippet("Rng rng(42);\nrng.fill_uniform(t, 0, 1);"), [])
        # Identifiers merely containing 'rand' must not trip the rule.
        self.assertEqual(lint_snippet("float operand = 1.0f;\nexpand(operand);"), [])


class EngineRule(unittest.TestCase):
    def test_flags_stateful_engines(self):
        self.assertEqual(
            rules_of(lint_snippet("std::mt19937_64 eng(seed);")), ["engine"])
        self.assertEqual(
            rules_of(lint_snippet("std::mt19937 eng;")), ["engine"])
        self.assertEqual(
            rules_of(lint_snippet("std::default_random_engine e(1);")),
            ["engine"])
        self.assertEqual(
            rules_of(lint_snippet("std::minstd_rand lcg(7);")), ["engine"])

    def test_rng_home_is_exempt(self):
        self.assertEqual(
            lint_snippet("std::mt19937_64 engine_;", "src/base/rng.hpp"), [])

    def test_counter_stream_and_rng_wrapper_are_fine(self):
        self.assertEqual(
            lint_snippet("const uint32_t w = philox_u32(key, idx);\n"
                         "philox_fill_u32(key, base, n, words);\n"
                         "const uint64_t k = sr_mix_key(layer_key, step);"),
            [])
        self.assertEqual(lint_snippet("Rng rng(42);\nauto v = rng.uniform();"), [])

    def test_mention_in_comment_is_ignored(self):
        self.assertEqual(
            lint_snippet("// apt::Rng wraps std::mt19937_64 internally"), [])

    def test_allow_hatch(self):
        self.assertEqual(
            lint_snippet("std::mt19937 eng;  // apt-lint: allow(engine)"), [])


class ClockRule(unittest.TestCase):
    def test_flags_wall_clock_reads(self):
        self.assertEqual(
            rules_of(lint_snippet("auto t = std::chrono::steady_clock::now();")),
            ["clock"])
        self.assertEqual(rules_of(lint_snippet("gettimeofday(&tv, 0);")), ["clock"])
        self.assertEqual(rules_of(lint_snippet("auto c = clock();")), ["clock"])

    def test_member_named_clock_is_fine(self):
        self.assertEqual(lint_snippet("int x = cfg.clock;"), [])
        self.assertEqual(lint_snippet("hardware.clock_mhz = 800;"), [])


class AccumRule(unittest.TestCase):
    def test_flags_scalar_accumulation_into_capture(self):
        code = (
            "double sum = 0.0;\n"
            "pool.parallel_for(0, n, [&](int64_t b, int64_t e) {\n"
            "  for (int64_t i = b; i < e; ++i) sum += x[i];\n"
            "});\n"
        )
        self.assertEqual(rules_of(lint_snippet(code)), ["accum"])

    def test_flags_increment_of_capture(self):
        code = (
            "int hits = 0;\n"
            "shard_parallel(shards, [&](int s) {\n"
            "  if (ok(s)) ++hits;\n"
            "});\n"
        )
        self.assertEqual(rules_of(lint_snippet(code)), ["accum"])

    def test_subscripted_slot_writes_are_fine(self):
        code = (
            "pool.parallel_for_chunked(0, n, c, [&](int64_t c, int64_t b, int64_t e) {\n"
            "  for (int64_t i = b; i < e; ++i) partial[c] += x[i];\n"
            "});\n"
        )
        self.assertEqual(lint_snippet(code), [])

    def test_body_local_accumulator_is_fine(self):
        code = (
            "pool.parallel_for(0, n, [&](int64_t b, int64_t e) {\n"
            "  double acc = 0.0;\n"
            "  for (int64_t i = b; i < e; ++i) acc += x[i];\n"
            "  out[b] = acc;\n"
            "});\n"
        )
        self.assertEqual(lint_snippet(code), [])

    def test_multi_declarator_locals_are_fine(self):
        code = (
            "shard_parallel(shards, [&](int s) {\n"
            "  double dgamma = 0.0, dbeta = 0.0;\n"
            "  dgamma += f(s);\n"
            "  dbeta += g(s);\n"
            "  sums[s] = dgamma + dbeta;\n"
            "});\n"
        )
        self.assertEqual(lint_snippet(code), [])

    def test_loop_induction_variables_are_fine(self):
        code = (
            "pool.parallel_for(0, n, [&](int64_t b, int64_t e) {\n"
            "  for (int64_t i = b; i < e; ++i) out[i] = i;\n"
            "});\n"
        )
        self.assertEqual(lint_snippet(code), [])

    def test_accumulation_outside_dispatch_is_fine(self):
        self.assertEqual(lint_snippet("double total = 0.0;\ntotal += x;\n"), [])

    def test_allow_hatch(self):
        code = (
            "pool.parallel_for(0, n, [&](int64_t b, int64_t e) {\n"
            "  // guarded by a mutex documented at the call site\n"
            "  // apt-lint: allow(accum)\n"
            "  shared += e - b;\n"
            "});\n"
        )
        self.assertEqual(lint_snippet(code), [])


class DeprecRule(unittest.TestCase):
    def test_flags_deprecated_entry_points(self):
        self.assertEqual(
            rules_of(lint_snippet("gemm_s8(false, false, m, n, k, a, b, qp, c);")),
            ["deprec"])
        self.assertEqual(
            rules_of(lint_snippet("gemm_s8_fused(false, false, m, n, k, a, b, qp, epi, c);")),
            ["deprec"])
        self.assertEqual(
            rules_of(lint_snippet("gemm_s8_requant_conv(m, n, k, a, cb, qp, epi, c);")),
            ["deprec"])
        self.assertEqual(
            rules_of(lint_snippet("nn::set_gemm_backend(GemmBackend::kInt8);")),
            ["deprec"])
        self.assertEqual(
            rules_of(lint_snippet("auto b = gemm_backend();")), ["deprec"])

    def test_plan_api_is_fine(self):
        code = (
            "const KernelPlan& plan = plan_for(PlanKey::s8(m, n, k, false, true));\n"
            "gemm_s8_ex(plan, args);\n"
            "gemm_ex(plan2, alpha, a, b, beta, c);\n"
            "set_plan_options(opts);\n"
        )
        self.assertEqual(lint_snippet(code), [])

    def test_suffixed_identifiers_do_not_trip(self):
        # gemm_s8_exec / gemm_s8_driver are the sanctioned internals.
        self.assertEqual(lint_snippet("gemm_s8_exec(ta, tb, m, n, k, a, b, cb, qp, epi, cf, cu);"), [])
        self.assertEqual(lint_snippet("resolved_gemm_backend();"), [])

    def test_wrapper_homes_are_exempt(self):
        call = "gemm_s8(false, false, m, n, k, a, b, qp, c);"
        for path in ("src/nn/plan.cpp", "src/nn/gemm_kernel.hpp", "src/nn/gemm.cpp"):
            self.assertEqual(lint_snippet(call, path), [])

    def test_mention_in_comment_is_ignored(self):
        self.assertEqual(lint_snippet("// gemm_s8_fused(...) used to live here"), [])

    def test_allow_hatch(self):
        self.assertEqual(
            lint_snippet("gemm_s8(f, f, m, n, k, a, b, qp, c);  // apt-lint: allow(deprec)"),
            [])


class RawioRule(unittest.TestCase):
    def test_flags_raw_writes(self):
        self.assertEqual(
            rules_of(lint_snippet('std::ofstream f(path, std::ios::binary);')),
            ["rawio"])
        self.assertEqual(
            rules_of(lint_snippet('std::fstream f(path, std::ios::out);')),
            ["rawio"])
        self.assertEqual(
            rules_of(lint_snippet('FILE* f = fopen(path, "wb");')), ["rawio"])
        self.assertEqual(
            rules_of(lint_snippet('freopen(path, "w", stdout);')), ["rawio"])
        self.assertEqual(
            rules_of(lint_snippet('fwrite(buf, 1, n, f);')), ["rawio"])

    def test_io_layer_is_exempt(self):
        for path in ("src/io/table.hpp", "src/io/atomic_file.cpp"):
            self.assertEqual(
                lint_snippet("std::ofstream f(path);", path), [])

    def test_reads_are_fine(self):
        self.assertEqual(lint_snippet("std::ifstream f(path);"), [])
        self.assertEqual(lint_snippet("fread(buf, 1, n, f);"), [])

    def test_suffixed_identifiers_do_not_trip(self):
        self.assertEqual(lint_snippet("my_fopen(path);"), [])
        self.assertEqual(lint_snippet("buffered_fwrite(buf);"), [])

    def test_mention_in_comment_is_ignored(self):
        self.assertEqual(
            lint_snippet("// std::ofstream would tear on crash here"), [])

    def test_allow_hatch(self):
        self.assertEqual(
            lint_snippet("std::ofstream f(p);  // apt-lint: allow(rawio)"),
            [])


class DocsyncRule(unittest.TestCase):
    BENCH = (
        '    } else if (arg == "--min-speedup") {\n'
        '      cfg.min_speedup = std::strtod(next().c_str(), nullptr);\n'
        '    } else if (arg == "--min-serve-speedup") {\n'
        '      cfg.min_serve_speedup = std::strtod(next().c_str(), nullptr);\n'
    )

    def docsync_of(self, bench: str | None, readme: str | None):
        with tempfile.TemporaryDirectory() as tmp:
            if bench is not None:
                os.makedirs(os.path.join(tmp, "bench"))
                with open(os.path.join(tmp, "bench", "bench_runner.cpp"), "w") as f:
                    f.write(bench)
            if readme is not None:
                with open(os.path.join(tmp, "README.md"), "w") as f:
                    f.write(readme)
            return apt_lint.check_docsync(tmp)

    def test_documented_flags_are_clean(self):
        readme = (
            "| key | flag |\n|---|---|\n"
            "| `gemm256_speedup_vs_ikj` | `--min-speedup` |\n"
            "| `serve_resnet8_qps_speedup_vs_serial` | `--min-serve-speedup` |\n"
        )
        self.assertEqual(self.docsync_of(self.BENCH, readme), [])

    def test_missing_flag_fires_with_flag_name_and_line(self):
        readme = "| key | flag |\n|---|---|\n| `x` | `--min-speedup` |\n"
        violations = self.docsync_of(self.BENCH, readme)
        self.assertEqual([v.rule for v in violations], ["docsync"])
        self.assertIn("--min-serve-speedup", violations[0].message)
        self.assertEqual(violations[0].line, 3)  # first defining line

    def test_prose_mention_outside_a_table_row_does_not_count(self):
        readme = "CI lowers --min-serve-speedup and --min-speedup on PRs.\n"
        violations = self.docsync_of(self.BENCH, readme)
        self.assertEqual(sorted(v.rule for v in violations),
                         ["docsync", "docsync"])

    def test_longer_flag_does_not_satisfy_its_prefix(self):
        bench = '    } else if (arg == "--min-train-speedup") {\n'
        readme = "| `k` | `--min-train-speedup-2t` |\n"
        violations = self.docsync_of(bench, readme)
        self.assertEqual([v.rule for v in violations], ["docsync"])
        self.assertIn("'--min-train-speedup'", violations[0].message)

    def test_tree_without_bench_runner_is_exempt(self):
        self.assertEqual(self.docsync_of(None, "| `--min-speedup` |\n"), [])

    def test_missing_readme_fires_for_every_flag(self):
        violations = self.docsync_of(self.BENCH, None)
        self.assertEqual(len(violations), 2)

    def test_real_tree_is_in_sync(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        self.assertEqual(apt_lint.check_docsync(root), [])


class Plumbing(unittest.TestCase):
    def test_collect_sources_finds_cpp_and_hpp(self):
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src", "nn"))
            for name in ("a.cpp", "b.hpp", "ignored.txt"):
                with open(os.path.join(tmp, "src", "nn", name), "w") as f:
                    f.write("int x;\n")
            found = apt_lint.collect_sources(tmp)
            self.assertEqual(sorted(os.path.basename(p) for p in found),
                             ["a.cpp", "b.hpp"])

    def test_main_exit_codes(self):
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            clean = os.path.join(tmp, "src", "clean.cpp")
            with open(clean, "w") as f:
                f.write("int x = 0;\n")
            self.assertEqual(apt_lint.main(["--root", tmp]), 0)
            dirty = os.path.join(tmp, "src", "dirty.cpp")
            with open(dirty, "w") as f:
                f.write("std::thread t(fn);\n")
            self.assertEqual(apt_lint.main(["--root", tmp]), 1)

    def test_real_tree_is_clean(self):
        # The repo itself must satisfy its own lint (the CI job asserts
        # this too; keeping it here makes the self-test catch regressions
        # without the CI round-trip).
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        violations = []
        for path in apt_lint.collect_sources(root):
            violations.extend(apt_lint.check_file(path, os.path.relpath(path, root)))
        self.assertEqual(violations, [])


if __name__ == "__main__":
    unittest.main()
