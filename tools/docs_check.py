#!/usr/bin/env python3
"""docs_check — markdown link/anchor integrity for the apt docs.

Checks every inline markdown link in README.md, DESIGN.md, ROADMAP.md,
and docs/**/*.md:

  * relative file links must resolve to an existing file or directory
    inside the repo;
  * fragment links (`file.md#anchor`, or a bare `#anchor` into the same
    file) must name a heading whose GitHub-style slug matches;
  * external links (http/https/mailto) are recorded but not fetched —
    this checker must work offline and never flake CI on a third-party
    outage.

Section references in prose ("DESIGN.md §15") are deliberately out of
scope: only real markdown links are machine-checkable without false
positives.

Usage:
  docs_check.py [--root DIR] [--selftest]
Exits non-zero if any link is broken (or, with --selftest, if the
checker's own unit tests fail).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple

# Inline links: [text](target). Images share the syntax ("![alt](src)")
# and are checked the same way. Targets with spaces are not used in this
# repo; angle-bracket targets are unwrapped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
EXTERNAL_RE = re.compile(r"^(https?:|mailto:)")


class Broken(NamedTuple):
    path: str  # file containing the link
    line: int  # 1-based
    target: str
    reason: str


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: strip markdown formatting,
    lowercase, drop everything but word chars/spaces/hyphens, then
    spaces -> hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep contents
    # Asterisk emphasis only: underscores are part of identifiers in
    # this repo's headings, never emphasis markers.
    text = text.replace("*", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(md_text: str) -> List[str]:
    """All anchor slugs a markdown file exposes, with GitHub's -1, -2
    suffixing for duplicate headings."""
    counts: Dict[str, int] = {}
    slugs: List[str] = []
    in_fence = False
    for line in md_text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        base = github_slug(m.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.append(base if n == 0 else f"{base}-{n}")
    return slugs


def iter_links(md_text: str):
    """(lineno, target) for every inline link outside code fences,
    with inline code spans blanked so example links don't count."""
    in_fence = False
    for idx, line in enumerate(md_text.splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        scrubbed = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(scrubbed):
            yield idx, m.group(1)


def check_file(path: str, root: str) -> List[Broken]:
    rel = os.path.relpath(path, root)
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    broken: List[Broken] = []
    own_slugs = None  # lazy: most files have no self-anchors

    for lineno, target in iter_links(text):
        if EXTERNAL_RE.match(target):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(dest):
                broken.append(Broken(rel, lineno, target, "file not found"))
                continue
            if not anchor:
                continue
            if not dest.endswith(".md"):
                continue  # anchors into non-markdown are not checkable
            with open(dest, "r", encoding="utf-8") as f:
                slugs = heading_slugs(f.read())
        else:  # bare #anchor into this file
            if own_slugs is None:
                own_slugs = heading_slugs(text)
            slugs = own_slugs
        if anchor not in slugs:
            broken.append(
                Broken(rel, lineno, target,
                       f"no heading with anchor '#{anchor}'"))
    return broken


def collect_docs(root: str) -> List[str]:
    files = []
    for name in ("README.md", "DESIGN.md", "ROADMAP.md"):
        p = os.path.join(root, name)
        if os.path.isfile(p):
            files.append(p)
    docs_dir = os.path.join(root, "docs")
    for dirpath, _dirnames, filenames in os.walk(docs_dir):
        for fn in sorted(filenames):
            if fn.endswith(".md"):
                files.append(os.path.join(dirpath, fn))
    return files


def selftest() -> int:
    import unittest

    class Slugs(unittest.TestCase):
        def test_basic_and_punctuation(self):
            self.assertEqual(github_slug("Build and test (tier-1 verify)"),
                             "build-and-test-tier-1-verify")
            self.assertEqual(
                github_slug("The CI perf gate: gated bench keys"),
                "the-ci-perf-gate-gated-bench-keys")

        def test_code_spans_keep_contents(self):
            self.assertEqual(github_slug("Reading `BENCH_kernels.json`"),
                             "reading-bench_kernelsjson")

        def test_duplicate_headings_get_suffixes(self):
            text = "# A\n\n## Setup\n\n## Setup\n"
            self.assertEqual(heading_slugs(text), ["a", "setup", "setup-1"])

        def test_fenced_headings_are_ignored(self):
            text = "```sh\n# not a heading\n```\n## Real\n"
            self.assertEqual(heading_slugs(text), ["real"])

    class Links(unittest.TestCase):
        def test_finds_links_and_skips_code(self):
            text = ("See [a](x.md) and ![img](y.png).\n"
                    "```\n[no](fence.md)\n```\n"
                    "`[no](span.md)` but [yes](z.md#q)\n")
            self.assertEqual([t for _, t in iter_links(text)],
                             ["x.md", "y.png", "z.md#q"])

        def test_check_file_reports_missing_and_bad_anchor(self):
            import tempfile
            with tempfile.TemporaryDirectory() as tmp:
                with open(os.path.join(tmp, "a.md"), "w") as f:
                    f.write("[ok](b.md#here)\n[bad](b.md#gone)\n"
                            "[lost](missing.md)\n[self](#nope)\n")
                with open(os.path.join(tmp, "b.md"), "w") as f:
                    f.write("## Here\n")
                found = check_file(os.path.join(tmp, "a.md"), tmp)
                self.assertEqual(
                    [(b.line, b.target) for b in found],
                    [(2, "b.md#gone"), (3, "missing.md"), (4, "#nope")])

        def test_external_links_are_skipped(self):
            import tempfile
            with tempfile.TemporaryDirectory() as tmp:
                with open(os.path.join(tmp, "a.md"), "w") as f:
                    f.write("[x](https://example.com/404)\n")
                self.assertEqual(check_file(os.path.join(tmp, "a.md"), tmp), [])

    suite = unittest.TestLoader().loadTestsFromTestCase(Slugs)
    suite.addTests(unittest.TestLoader().loadTestsFromTestCase(Links))
    result = unittest.TextTestRunner(verbosity=1).run(suite)
    return 0 if result.wasSuccessful() else 1


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root")
    parser.add_argument("--selftest", action="store_true",
                        help="run the checker's own unit tests and exit")
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()

    docs = collect_docs(args.root)
    if not docs:
        print("docs_check: no markdown files found", file=sys.stderr)
        return 2
    broken: List[Broken] = []
    for path in docs:
        broken.extend(check_file(path, args.root))
    for b in broken:
        print(f"{b.path}:{b.line}: broken link '{b.target}' ({b.reason})")
    if broken:
        print(f"docs_check: {len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs_check: {len(docs)} files, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
