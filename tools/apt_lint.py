#!/usr/bin/env python3
"""apt_lint — project-specific concurrency/determinism lint for apt.

Enforces repository invariants that clang-tidy cannot express. All rules
apply to library code under src/ only (tests, benches, and examples may
time things and spawn helpers as they see fit):

  thread  No raw threading primitives (std::thread / std::jthread /
          std::async, OpenMP pragmas, pthread_create) outside
          src/base/thread_pool.*. All library concurrency must go through
          the ThreadPool so the determinism contract (chunk
          decompositions fixed by the range, never by the machine) holds
          everywhere.

  rng     No non-deterministic or non-counter RNG: rand()/srand(),
          std::random_device, and time()/clock()-style seeds are all
          banned. Every stochastic component must draw from an explicitly
          seeded apt::Rng so runs are reproducible bit-for-bit.

  engine  No stateful <random> engine (std::mt19937 and friends) outside
          src/base/rng.hpp, where apt::Rng wraps the one sanctioned
          instance. A stateful draw depends on how many draws came
          before, so any engine reachable from a parallel or sharded path
          silently breaks the bit-determinism contract; gradient-path
          randomness in particular must come from the counter-based
          Philox stream (philox_u32 / philox_fill_u32 / sr_mix_key),
          which is a pure function of (step, layer, element index).

  clock   No wall-clock reads (std::chrono ...::now, gettimeofday,
          time(), clock()) in library code. Kernels and layers must be
          pure functions of their inputs; timing lives in bench/.

  accum   No scalar accumulation into captured state inside a parallel
          dispatch body (ThreadPool::parallel_for / parallel_for_chunked
          / shard_parallel). `sum += x` on a captured scalar is a data
          race or an order-dependent reduction; write into a per-chunk /
          per-shard slot (`partial[c] += x`, allowed) and reduce at a
          serial point, or accumulate into a body-local first.

  deprec  No calls to the deprecated GEMM entry points (gemm_s8,
          gemm_s8_fused, gemm_s8_requant, gemm_s8_fused_conv,
          gemm_s8_requant_conv) or backend globals (set_gemm_backend,
          gemm_backend) in library code. New code resolves a KernelPlan
          via plan_for(PlanKey...) and executes through gemm_ex /
          gemm_s8_ex; configuration goes through set_plan_options. The
          wrappers survive only for out-of-tree source compatibility, in
          src/nn/plan.*, src/nn/gemm_kernel.*, and src/nn/gemm.*.

  rawio   No raw file writes (std::ofstream / std::fstream, fopen /
          freopen / fwrite) in library code outside src/io/. Direct
          writes land bytes at the final path incrementally, so a crash
          or full disk leaves a torn, checksum-less file where a reader
          expects an artifact. All durable output must go through
          src/io/ (write_file_atomic's temp + fsync + rename and the
          checksummed artifact container); reads (std::ifstream) are
          unrestricted because loaders validate defensively.

  docsync Repo-level doc/flag consistency: every `--min-*` gate flag
          defined in bench/bench_runner.cpp must appear in README.md's
          gated-bench-key table (a markdown table row). The README table
          is the operator-facing contract for the CI perf gate; a new
          floor flag that never reaches it is an undocumented gate.
          Runs only in --root mode (it is not a per-file C++ rule).

Escape hatch: a line (or the line directly above it) containing
`apt-lint: allow(<rule>[,<rule>...])` exempts that line, for cases where
the invariant is upheld by other documented means. Use sparingly and
justify in a comment.

Usage:
  apt_lint.py [--root DIR] [FILE...]
Scans DIR/src (default: repo root containing this script) or the given
files. Exits non-zero if any violation is found.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import List, NamedTuple, Tuple

RULES = ("thread", "rng", "engine", "clock", "accum", "deprec", "rawio",
         "docsync")

ALLOW_RE = re.compile(r"apt-lint:\s*allow\(([a-z,\s]+)\)")

# Files exempt from the `thread` rule: the one place raw primitives are
# allowed to live.
THREAD_EXEMPT_RE = re.compile(r"src[/\\]base[/\\]thread_pool\.(hpp|cpp)$")

# Files exempt from the `deprec` rule: where the deprecated wrappers and
# their shims are declared/defined.
DEPREC_EXEMPT_RE = re.compile(
    r"src[/\\]nn[/\\](plan|gemm_kernel|gemm)\.(hpp|cpp)$"
)

# Files exempt from the `engine` rule: the home of the one sanctioned
# stateful engine (inside apt::Rng) and of the counter-based generator.
ENGINE_EXEMPT_RE = re.compile(r"src[/\\]base[/\\]rng\.hpp$")

# Files exempt from the `rawio` rule: the crash-safe I/O layer itself,
# where the primitive writes are wrapped.
RAWIO_EXEMPT_RE = re.compile(r"src[/\\]io[/\\]")

THREAD_RE = re.compile(
    r"\bstd::(thread|jthread|async)\b|#\s*pragma\s+omp\b|\bpthread_create\b"
)
RNG_RE = re.compile(
    r"\bstd::rand\b|(?<![\w:])s?rand\s*\(|\b(std::)?random_device\b"
    r"|(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)"
)
ENGINE_RE = re.compile(
    r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux(24|48)(_base)?|knuth_b"
    r"|(subtract_with_carry|linear_congruential|mersenne_twister"
    r"|discard_block|independent_bits|shuffle_order)_engine)\b"
)
CLOCK_RE = re.compile(
    r"\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)::now\b"
    r"|\bgettimeofday\b|(?<![\w:.])clock\s*\(\s*\)"
)
DISPATCH_RE = re.compile(r"\b(parallel_for_chunked|parallel_for|shard_parallel)\s*\(")
DEPREC_RE = re.compile(
    r"(?<![\w:])(?:nn::)?"
    r"(gemm_s8(?:_fused_conv|_requant_conv|_fused|_requant)?"
    r"|set_gemm_backend|gemm_backend)\s*\("
)
RAWIO_RE = re.compile(
    r"\bstd::(ofstream|fstream)\b"
    r"|(?<![\w:])f(?:re)?open\s*\("
    r"|(?<![\w:])fwrite\s*\("
)

# Local declarations inside a lambda body (heuristic): a type-ish token
# followed by an identifier being initialised or declared.
DECL_RE = re.compile(
    r"\b(?:float|double|bool|char|unsigned|int|long|auto|size_t"
    r"|u?int(?:8|16|32|64)_t|std::\w+(?:<[^;{}]*>)?|Tensor|Shape)"
    r"(?:\s*[&*]|\s)\s*(\w+)\s*(?:=|;|\{|\()"
)
# Compound assignment / inc-dec on a BARE identifier (no subscript,
# member access, or dereference — per-slot writes like `p[c] += x` stay
# legal because each slot has one writer).
SCALAR_ACCUM_RE = re.compile(r"(?<![\w\]\).\->])(\w+)\s*(\+=|-=|\*=|/=)")
INCDEC_PRE_RE = re.compile(r"(\+\+|--)\s*(\w+)\b(?!\s*[\[.)])")
INCDEC_POST_RE = re.compile(r"(?<![\w\]\).])\b(\w+)\s*(\+\+|--)")


class Violation(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Returns text of identical length/line structure with comments,
    string literals, and char literals blanked out (so rule patterns never
    match inside them) while the original stays available for allow()
    detection."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def allowed_rules(orig_lines: List[str], lineno: int) -> set:
    """Rules exempted for 1-based line `lineno` by an allow() on that line
    or the one directly above."""
    rules = set()
    for ln in (lineno - 1, lineno - 2):
        if 0 <= ln < len(orig_lines):
            m = ALLOW_RE.search(orig_lines[ln])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def match_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] == '{' (text must
    already be comment/string-stripped), or len(text) if unbalanced."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def lambda_bodies(stripped: str) -> List[Tuple[int, str]]:
    """(body_start_offset, body_text) for every lambda passed anywhere
    inside a parallel dispatch call's argument list."""
    bodies = []
    for m in DISPATCH_RE.finditer(stripped):
        # Bound the call's argument list by paren matching.
        call_open = m.end() - 1
        depth, call_end = 0, len(stripped)
        for i in range(call_open, len(stripped)):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    call_end = i
                    break
        # Every lambda in the argument list: capture list, optional
        # params, then the body braces.
        region = stripped[call_open:call_end]
        for lm in re.finditer(r"\[[&=\w,\s*]*\]\s*(\(([^()]|\([^()]*\))*\))?\s*(?:mutable\s*)?(?:->[^{]+)?\{", region):
            body_open = call_open + lm.end() - 1
            body_close = match_brace(stripped, body_open)
            params = lm.group(1) or ""
            bodies.append((body_open, params, stripped[body_open:body_close]))
    return bodies


def check_accum(stripped: str, orig_lines: List[str], path: str) -> List[Violation]:
    violations = []
    seen = set()
    for body_start, params, body in lambda_bodies(stripped):
        locals_ = set()
        for dm in DECL_RE.finditer(body):
            locals_.add(dm.group(1))
            # Multi-declarator statements: `double a = 0.0, b = 0.0;`
            # declares b too. Scan the rest of the statement for
            # comma-separated declarators (heuristic: an identifier
            # directly following a comma and followed by =, comma, or ;).
            stmt_end = body.find(";", dm.end())
            if stmt_end != -1:
                for extra in re.finditer(
                    r",\s*[&*]?\s*(\w+)\s*(?:=|,|;)", body[dm.end(): stmt_end + 1]
                ):
                    locals_.add(extra.group(1))
        for pm in re.finditer(r"(\w+)\s*[,)]", params):
            locals_.add(pm.group(1))

        hits = []
        for am in SCALAR_ACCUM_RE.finditer(body):
            hits.append((am.start(1), am.group(1)))
        for am in INCDEC_PRE_RE.finditer(body):
            hits.append((am.start(2), am.group(2)))
        for am in INCDEC_POST_RE.finditer(body):
            hits.append((am.start(1), am.group(1)))

        for off, name in hits:
            if not name or name[0].isdigit() or name in locals_:
                continue
            lineno = stripped.count("\n", 0, body_start + off) + 1
            key = (lineno, name)
            if key in seen:
                continue
            seen.add(key)
            if "accum" in allowed_rules(orig_lines, lineno):
                continue
            violations.append(
                Violation(
                    path,
                    lineno,
                    "accum",
                    f"scalar accumulation into captured '{name}' inside a "
                    "parallel dispatch body; use a per-chunk slot or a "
                    "body-local and reduce at a serial point",
                )
            )
    return violations


def check_file(path: str, display_path: str | None = None) -> List[Violation]:
    display = display_path or path
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Violation(display, 0, "io", str(e))]

    orig_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    violations: List[Violation] = []

    line_rules = [
        ("rng", RNG_RE, "non-deterministic RNG or time-based seed; draw from an explicitly seeded apt::Rng"),
        ("clock", CLOCK_RE, "wall-clock read in library code; timing belongs in bench/"),
    ]
    if not THREAD_EXEMPT_RE.search(display.replace(os.sep, "/")):
        line_rules.insert(
            0,
            ("thread", THREAD_RE, "raw threading primitive outside src/base/thread_pool.*; use ThreadPool"),
        )
    if not ENGINE_EXEMPT_RE.search(display.replace(os.sep, "/")):
        line_rules.append(
            ("engine", ENGINE_RE, "stateful <random> engine outside src/base/rng.hpp; draw from a seeded apt::Rng, or the counter-based philox_* stream on gradient paths"),
        )
    if not DEPREC_EXEMPT_RE.search(display.replace(os.sep, "/")):
        line_rules.append(
            ("deprec", DEPREC_RE, "deprecated GEMM entry point or backend global; resolve a KernelPlan (plan_for) and call gemm_ex / gemm_s8_ex, configure via set_plan_options (plan.hpp)"),
        )
    if not RAWIO_EXEMPT_RE.search(display.replace(os.sep, "/")):
        line_rules.append(
            ("rawio", RAWIO_RE, "raw file write outside src/io/; durable output must go through write_file_atomic / the artifact container (io/atomic_file.hpp, io/artifact.hpp) so a crash never leaves a torn file at the final path"),
        )

    for idx, line in enumerate(stripped_lines):
        lineno = idx + 1
        for rule, pattern, msg in line_rules:
            if pattern.search(line) and rule not in allowed_rules(orig_lines, lineno):
                violations.append(Violation(display, lineno, rule, msg))

    violations.extend(check_accum(stripped, orig_lines, display))
    violations.sort(key=lambda v: (v.path, v.line))
    return violations


MIN_FLAG_RE = re.compile(r"--min-[a-z0-9][a-z0-9-]*")


def check_docsync(root: str) -> List[Violation]:
    """Every --min-* gate flag in bench/bench_runner.cpp must appear in a
    markdown table row of README.md (the gated-bench-key table)."""
    bench_path = os.path.join(root, "bench", "bench_runner.cpp")
    readme_path = os.path.join(root, "README.md")
    if not os.path.isfile(bench_path):
        return []  # nothing to sync (e.g. a selftest tree without bench/)
    with open(bench_path, "r", encoding="utf-8", errors="replace") as f:
        bench_text = f.read()

    # First defining line per flag, for actionable messages.
    flags = {}
    for idx, line in enumerate(bench_text.splitlines(), start=1):
        for m in MIN_FLAG_RE.finditer(line):
            flags.setdefault(m.group(0), idx)
    if not flags:
        return []

    table_rows = ""
    if os.path.isfile(readme_path):
        with open(readme_path, "r", encoding="utf-8", errors="replace") as f:
            table_rows = "\n".join(
                ln for ln in f.read().splitlines() if ln.lstrip().startswith("|"))

    violations = []
    for flag in sorted(flags):
        # Boundary-aware: `--min-train-speedup-2t` in the table must not
        # satisfy a lookup for `--min-train-speedup`.
        if not re.search(re.escape(flag) + r"(?![a-z0-9-])", table_rows):
            violations.append(
                Violation(
                    os.path.join("bench", "bench_runner.cpp"),
                    flags[flag],
                    "docsync",
                    f"gate flag '{flag}' is not documented in README.md's "
                    "gated-bench-key table; every perf-gate floor must "
                    "appear there with its default and gated key",
                )
            )
    return violations


def collect_sources(root: str) -> List[str]:
    files = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if fn.endswith((".cpp", ".hpp", ".h", ".cc")):
                files.append(os.path.join(dirpath, fn))
    return files


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        help="repository root (scans ROOT/src)")
    parser.add_argument("files", nargs="*", help="specific files to lint instead of ROOT/src")
    args = parser.parse_args(argv)

    targets = args.files or collect_sources(args.root)
    if not targets:
        print("apt_lint: no source files found", file=sys.stderr)
        return 2

    all_violations: List[Violation] = []
    for path in targets:
        rel = os.path.relpath(path, args.root) if os.path.isabs(path) else path
        all_violations.extend(check_file(path, rel))
    if not args.files:  # repo-level rules only make sense in --root mode
        all_violations.extend(check_docsync(args.root))

    for v in all_violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if all_violations:
        print(f"apt_lint: {len(all_violations)} violation(s) in "
              f"{len({v.path for v in all_violations})} file(s)", file=sys.stderr)
        return 1
    print(f"apt_lint: {len(targets)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
