// Kernel microbenchmarks (google-benchmark): GEMM, conv forward/backward,
// quantise / dequantise / Eq. 3 grid update, and the Gavg metric itself —
// the per-iteration primitives whose cost the energy model abstracts.
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "core/gavg.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_kernel.hpp"
#include "quant/qtensor.hpp"

using namespace apt;

namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> a(static_cast<size_t>(n * n)),
      b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    nn::gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposed(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> a(static_cast<size_t>(n * n)),
      b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    nn::gemm(true, true, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransposed)->Arg(128);

// Backend comparison on one shape: packed/auto vs packed/scalar vs the
// legacy ikj baseline (bench_runner tracks the same split in CI).
void BM_GemmBackend(benchmark::State& state) {
  const int64_t n = 256;
  const auto backend = static_cast<nn::GemmBackend>(state.range(0));
  std::vector<float> a(static_cast<size_t>(n * n)),
      b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const nn::GemmBackend prev = nn::gemm_backend();
  nn::set_gemm_backend(backend);
  for (auto _ : state) {
    nn::gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  nn::set_gemm_backend(prev);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmBackend)
    ->Arg(static_cast<int>(nn::GemmBackend::kPacked))
    ->Arg(static_cast<int>(nn::GemmBackend::kPackedScalar))
    ->Arg(static_cast<int>(nn::GemmBackend::kIkj));

void BM_GemmPackA(benchmark::State& state) {
  const int64_t m = 192, k = 256;
  std::vector<float> a(static_cast<size_t>(m * k), 1.0f);
  std::vector<float> packed(static_cast<size_t>(m * k));
  for (auto _ : state) {
    nn::gemm_pack_a(false, a.data(), m, k, 0, nn::kGemmMC, 0, k,
                    packed.data());
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetItemsProcessed(state.iterations() * nn::kGemmMC * k);
}
BENCHMARK(BM_GemmPackA);

void BM_GemmPackB(benchmark::State& state) {
  const int64_t k = 256, n = 1024;
  std::vector<float> b(static_cast<size_t>(k * n), 1.0f);
  std::vector<float> packed(static_cast<size_t>(k * n));
  const bool trans = state.range(0) != 0;
  for (auto _ : state) {
    nn::gemm_pack_b(trans, b.data(), k, n, 0, k, 0, n, packed.data());
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetItemsProcessed(state.iterations() * k * n);
}
BENCHMARK(BM_GemmPackB)->Arg(0)->Arg(1);

void BM_ConvForward(benchmark::State& state) {
  const int64_t ch = state.range(0);
  Rng rng(1);
  nn::Conv2dOptions opts;
  opts.in_channels = ch;
  opts.out_channels = ch;
  nn::Conv2d conv("bench", opts, rng);
  Tensor x(Shape{8, ch, 16, 16});
  rng.fill_normal(x, 0, 1);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs_per_sample() * 8);
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  const int64_t ch = state.range(0);
  Rng rng(1);
  nn::Conv2dOptions opts;
  opts.in_channels = ch;
  opts.out_channels = ch;
  nn::Conv2d conv("bench", opts, rng);
  Tensor x(Shape{8, ch, 16, 16});
  rng.fill_normal(x, 0, 1);
  Tensor y = conv.forward(x, true);
  Tensor dy(y.shape());
  rng.fill_normal(dy, 0, 1);
  for (auto _ : state) {
    Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs_per_sample() * 16);
}
BENCHMARK(BM_ConvBackward)->Arg(8)->Arg(16);

void BM_Quantize(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor t(Shape{n});
  rng.fill_normal(t, 0, 1);
  for (auto _ : state) {
    quant::QuantizedTensor q(t, 8);
    benchmark::DoNotOptimize(q.codes_u8());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Quantize)->Arg(1 << 12)->Arg(1 << 16);

void BM_Dequantize(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor t(Shape{n});
  rng.fill_normal(t, 0, 1);
  quant::QuantizedTensor q(t, 8);
  Tensor out(t.shape());
  for (auto _ : state) {
    q.dequantize_into(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dequantize)->Arg(1 << 12)->Arg(1 << 16);

void BM_GridUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor t(Shape{n}), delta(Shape{n});
  rng.fill_normal(t, 0, 1);
  rng.fill_normal(delta, 0, 1e-3f);
  quant::QuantizedTensor q(t, 8);
  for (auto _ : state) {
    auto stats = q.apply_update(delta, quant::RoundMode::kTrunc);
    benchmark::DoNotOptimize(stats.moved);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GridUpdate)->Arg(1 << 12)->Arg(1 << 16);

void BM_GavgMetric(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  nn::Parameter p("w", Shape{n});
  rng.fill_normal(p.value, 0, 1);
  rng.fill_normal(p.grad, 0, 1e-2f);
  for (auto _ : state) {
    const double g = core::tensor_gavg(p);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GavgMetric)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
