// Ablations for the design choices DESIGN.md calls out (not in the paper,
// but claims the paper makes in passing):
//   A. initial bitwidth k0       — §IV-A claims results are insensitive to
//                                  k0 ("an initial bitwidth other than 6
//                                  leads to similar results")
//   B. metric interval           — Alg. 2: "a few times per epoch suffice"
//   C. update rounding mode      — Eq. 3 truncation vs nearest/stochastic
//   D. Gavg moving-average decay — Alg. 2 line 8
#include "common.hpp"

using namespace apt;

namespace {

train::History run_variant(const bench::Experiment& exp, core::AptConfig ac) {
  auto model = exp.make_model(/*seed=*/1);
  data::DataLoader loader = exp.make_train_loader();
  train::Trainer trainer(*model, loader, exp.dataset->test().images,
                         exp.dataset->test().labels, exp.trainer_config());
  core::AptController ctrl(trainer, ac);
  trainer.add_hook(&ctrl);
  return trainer.run();
}

}  // namespace

int main() {
  bench::Scale scale = bench::scale_from_env();
  if (scale.name == "default") {  // ablations run many variants; trim
    scale.epochs = std::max(12, scale.epochs * 2 / 3);
  }
  bench::print_banner("Ablations — APT design choices", scale);
  bench::Experiment exp(scale);

  io::Table t({"ablation", "setting", "test acc", "energy J", "mean bits"});
  auto add = [&](const std::string& group, const std::string& setting,
                 const train::History& h) {
    double mean_bits = 0;
    const auto& bits = h.epochs.back().unit_bits;
    for (int b : bits) mean_bits += b;
    mean_bits /= static_cast<double>(bits.size());
    t.add_row({group, setting, io::Table::fmt(h.best_test_accuracy()),
               io::Table::fmt(h.total_energy_j(), 4),
               io::Table::fmt(mean_bits, 1)});
  };

  // A: initial bitwidth (paper claims insensitivity — the policy is a
  // precision search that converges to similar layer-wise configs).
  for (int k0 : {2, 4, 6, 8, 12}) {
    std::printf("[A] k0=%d ...\n", k0);
    std::fflush(stdout);
    core::AptConfig ac = exp.apt_config();
    ac.initial_bits = k0;
    add("A: initial k0", std::to_string(k0), run_variant(exp, ac));
  }

  // B: Gavg evaluation interval.
  for (int interval : {1, 2, 4, 8}) {
    std::printf("[B] interval=%d ...\n", interval);
    std::fflush(stdout);
    core::AptConfig ac = exp.apt_config();
    ac.eval_interval = interval;
    add("B: eval INTERVAL", std::to_string(interval), run_variant(exp, ac));
  }

  // C: rounding mode of the Eq. 3 update.
  {
    const std::pair<quant::RoundMode, const char*> modes[] = {
        {quant::RoundMode::kTrunc, "trunc (paper)"},
        {quant::RoundMode::kNearest, "nearest"},
        {quant::RoundMode::kStochastic, "stochastic"},
    };
    for (const auto& [mode, name] : modes) {
      std::printf("[C] rounding=%s ...\n", name);
      std::fflush(stdout);
      core::AptConfig ac = exp.apt_config();
      ac.update_rounding = mode;
      add("C: update rounding", name, run_variant(exp, ac));
    }
  }

  // D: moving-average momentum for Gavg.
  for (double ema : {0.0, 0.8, 0.95}) {
    std::printf("[D] ema=%.2f ...\n", ema);
    std::fflush(stdout);
    core::AptConfig ac = exp.apt_config();
    ac.ema_momentum = ema;
    add("D: Gavg EMA", io::Table::fmt(ema, 2), run_variant(exp, ac));
  }

  t.print();
  t.write_csv(bench::results_dir() + "/ablation_apt.csv");
  return 0;
}
