// Figure 1: Gavg vs epoch for two layers under APT (T_min = 1.0, T_max = ∞).
//
// Paper shape: layer A starts with Gavg below T_min (quantisation
// underflow) and APT lifts it above the threshold by allocating bits;
// layer B starts far above the threshold and drifts down toward it as
// training progresses, picking up bits whenever it touches T_min.
#include "common.hpp"

using namespace apt;

int main() {
  const bench::Scale scale = bench::scale_from_env();
  bench::print_banner("Figure 1 — Gavg v.s. Epoch for two layers (T_min=1.0)",
                      scale);

  bench::Experiment exp(scale);
  auto model = exp.make_model(/*seed=*/1);
  data::DataLoader loader = exp.make_train_loader();
  train::Trainer trainer(*model, loader, exp.dataset->test().images,
                         exp.dataset->test().labels, exp.trainer_config());
  core::AptConfig ac = exp.apt_config(/*t_min=*/1.0);
  core::AptController ctrl(trainer, ac);
  trainer.add_hook(&ctrl);
  const train::History h = trainer.run();

  // Pick the two most contrasting units by their first-epoch Gavg.
  const auto& first = h.epochs.front().unit_gavg;
  size_t lo = 0, hi = 0;
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i] < first[lo]) lo = i;
    if (first[i] > first[hi]) hi = i;
  }
  const std::string name_a = h.unit_names[lo];  // underflowing layer
  const std::string name_b = h.unit_names[hi];  // easy-to-update layer

  io::Table t({"epoch", "Gavg(" + name_a + ")", "bits(A)",
               "Gavg(" + name_b + ")", "bits(B)"});
  for (const auto& e : h.epochs)
    t.add_row({std::to_string(e.epoch), io::Table::fmt(e.unit_gavg[lo], 3),
               std::to_string(e.unit_bits[lo]),
               io::Table::fmt(e.unit_gavg[hi], 3),
               std::to_string(e.unit_bits[hi])});
  t.print();
  t.write_csv(bench::results_dir() + "/fig1_gavg_trend.csv");

  const auto& last = h.epochs.back();
  std::printf(
      "\nshape check: layer A Gavg %.3f -> %.3f (target: lifted toward "
      "T_min=1.0 via bits %d -> %d); layer B Gavg %.3f -> %.3f "
      "(drifts down as training plateaus)\n",
      first[lo], last.unit_gavg[lo], h.epochs.front().unit_bits[lo],
      last.unit_bits[lo], first[hi], last.unit_gavg[hi]);
  return 0;
}
