// Self-contained kernel benchmark runner (no Google Benchmark).
//
// Times the hot-path workloads — GEMM across backends, im2col conv
// forward/backward, and a full train step — and writes the results to a
// stable JSON schema ("apt-bench-kernels/1", see README.md) so CI can
// track the repo's perf trajectory. With --check it re-reads a
// previously recorded JSON and fails (exit 1) when any workload ran
// more than --tolerance times slower than the reference.
//
// Usage:
//   bench_runner [--quick] [--out FILE] [--check REF.json]
//                [--tolerance X] [--filter SUBSTR] [--list]
//                [--autotune PLANS.json]
//
// Tolerance may also come from the PERF_GATE_TOLERANCE environment
// variable; the flag wins. Default 2.0 — loose on purpose so shared CI
// runners do not flake the gate.
//
// --autotune times every candidate KernelPlan for a representative key
// set (timing is banned in src/ by apt_lint's `clock` rule, so the
// planner's autotune mode lives here), adopts each winner into the
// process-wide plan cache, and persists the result as JSON. A later run
// of any apt binary picks the tuned plans back up via
// PlanOptions::cache_file or APT_PLAN_CACHE. The benchmarks that follow
// in the same run already execute with the adopted plans.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.hpp"
#include "base/thread_pool.hpp"
#include "core/grid_representation.hpp"
#include "data/loader.hpp"
#include "models/zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_kernel.hpp"
#include "nn/linear.hpp"
#include "nn/plan.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax_xent.hpp"
#include "serve/compiled_model.hpp"
#include "serve/server.hpp"
#include "train/sharded_step.hpp"

namespace {

using apt::Rng;
using apt::Shape;
using apt::Tensor;

struct BenchResult {
  std::string name;
  double ns_per_iter = 0.0;
  int64_t work_items = 0;  // flops for GEMM/conv, samples for train step
};

struct Config {
  bool quick = false;
  std::string out = "BENCH_kernels.json";
  std::string check;  // reference JSON; empty = no gate
  double tolerance = 2.0;
  // Floor on the derived packed-vs-ikj speedups. Unlike the absolute
  // ns comparison this is measured on one machine against itself, so
  // it holds on any runner speed; it catches "the packed backend
  // stopped being fast" even when wall-times drift.
  double min_speedup = 1.2;
  // Floor on the data-parallel train step's speedup over the serial
  // reference path (same shards, same numerics, one thread). Also
  // self-relative, but only meaningful with cores to spread over:
  // enforced when the pool has >= 4 participating threads, recorded
  // (ungated) otherwise.
  double min_train_speedup = 1.5;
  // On 2-3-thread pools the same key is held to break-even instead:
  // after the dispatch-overhead work the parallel engine must not LOSE
  // to the serial reference even without real cores to win on. 0
  // disables (like min_train_speedup).
  double min_train_speedup_2t = 0.9;
  // Floors on the int8 conv ratios vs the packed fp32 backend
  // (self-relative like the speedups, so they hold on any runner
  // speed). The chain ratio is the code-passing claim: two quantised
  // convs handing codes through a ReLU with no fp32 round-trip.
  double min_conv_s8_ratio = 1.35;
  double min_chain_ratio = 1.45;
  // Floor on the quantised fwd+bwd step vs the packed fp32 one: the
  // int8-gradient-GEMM claim (stochastically-rounded dY codes feeding
  // dcols / dW integer GEMMs) must beat the fp32 backward end to end.
  double min_fwdbwd_s8_ratio = 1.3;
  // Floor on the serving runtime's QPS over the serial single-request
  // baseline (same frozen model, same samples, batch-1 run() calls on
  // one thread). Self-relative, but the win comes from worker
  // concurrency: like min_train_speedup it needs >= 4 participating
  // threads; 2-3-thread pools fall back to the break-even floor.
  double min_serve_speedup = 1.5;
  std::string filter;
  bool list_only = false;
  std::string autotune;  // JSON plan-cache path; empty = no autotune
};

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Grows an iteration count until one batch of `fn` fills `min_time_s`
// (warming caches, arenas and the pool along the way).
int64_t calibrate_iters(const std::function<void()>& fn, double min_time_s) {
  fn();  // warm up caches, arenas, pool
  int64_t iters = 1;
  for (;;) {
    const double t0 = now_ns();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double elapsed = now_ns() - t0;
    if (elapsed >= min_time_s * 1e9 || iters >= (1 << 20)) return iters;
    if (elapsed <= 0.0) {
      iters *= 8;
    } else {
      const double target = iters * min_time_s * 1.2e9 / elapsed;
      iters = std::max(iters + 1, static_cast<int64_t>(target));
    }
  }
}

double one_batch_ns(const std::function<void()>& fn, int64_t iters) {
  const double t0 = now_ns();
  for (int64_t i = 0; i < iters; ++i) fn();
  return (now_ns() - t0) / static_cast<double>(iters);
}

// Calibrates an iteration count that fills `min_time_s`, then takes the
// best of three batches (min average) to shed scheduler noise.
double time_ns_per_iter(const std::function<void()>& fn, double min_time_s) {
  const int64_t iters = calibrate_iters(fn, min_time_s);
  double best = 1e300;
  for (int batch = 0; batch < 3; ++batch)
    best = std::min(best, one_batch_ns(fn, iters));
  return best;
}

// Times two workloads whose *ratio* is what the gate enforces. Batches
// alternate a/b/a/b so a drift in background load (shared or throttled
// cores) inflates both sides alike instead of whichever one happened to
// run during the burst; each side keeps its own calibrated iteration
// count and takes the min over ten shorter batches, which also gives
// more chances to catch an uncontended window than best-of-three.
std::pair<double, double> time_pair_ns(const std::function<void()>& fa,
                                       const std::function<void()>& fb,
                                       double min_time_s) {
  const int64_t ia = calibrate_iters(fa, min_time_s / 2);
  const int64_t ib = calibrate_iters(fb, min_time_s / 2);
  double best_a = 1e300;
  double best_b = 1e300;
  for (int batch = 0; batch < 10; ++batch) {
    best_a = std::min(best_a, one_batch_ns(fa, ia));
    best_b = std::min(best_b, one_batch_ns(fb, ib));
  }
  return {best_a, best_b};
}

// Scoped GEMM backend override (restores the previous selection).
class BackendGuard {
 public:
  explicit BackendGuard(apt::nn::GemmBackend b)
      : prev_(apt::nn::gemm_backend()) {
    apt::nn::set_gemm_backend(b);
  }
  ~BackendGuard() { apt::nn::set_gemm_backend(prev_); }

 private:
  apt::nn::GemmBackend prev_;
};

struct Workload {
  std::string name;
  int64_t work_items;
  std::function<std::function<void()>()> make;  // builds state + run fn
};

// ---- serving: a frozen ResNet-8 behind the dynamic-batching server ----

// Clients-per-iteration and requests-per-client for the serving
// workloads: one bench iteration is kServeClients * kServeReqs
// single-sample requests, so items_per_sec in the JSON is QPS.
constexpr int kServeClients = 4;
constexpr int kServeReqs = 8;

struct ServeBench {
  static constexpr int64_t kPool = 8;  // distinct samples cycled through
  apt::serve::CompiledModel model;
  std::unique_ptr<apt::serve::Server> server;
  Tensor x;  // [kPool, 3, 16, 16]
};

// Builds, calibrates and freezes the bench ResNet-8 (same topology as
// train_step_resnet8), then stands up a 4-worker server over it.
std::shared_ptr<ServeBench> make_serve_bench() {
  Rng rng(1);
  auto net = apt::models::make_resnet(
      {.n = 1, .base_width = 8, .num_classes = 10}, rng);
  apt::core::GridOptions go;
  go.bits = 6;
  for (apt::nn::Layer* leaf : apt::nn::leaves_of(*net)) {
    apt::nn::Parameter* w = nullptr;
    if (auto* c = dynamic_cast<apt::nn::Conv2d*>(leaf)) w = &c->weight();
    if (auto* l = dynamic_cast<apt::nn::Linear*>(leaf)) w = &l->weight();
    if (w == nullptr) continue;
    w->rep = std::make_shared<apt::core::GridRepresentation>(*w, go);
  }
  for (int i = 0; i < 2; ++i) {  // warm the activation-range trackers
    Tensor calib(Shape{8, 3, 16, 16});
    rng.fill_normal(calib, 0, 1);
    net->forward(calib, /*training=*/true);
  }
  auto sb = std::make_shared<ServeBench>();
  sb->model = apt::serve::CompiledModel::compile(*net, Shape{3, 16, 16});
  // Like the thread pool, size the worker fleet to the machine: extra
  // workers on a small core count only add wakeups and context
  // switches (each worker is serial under its InlineScope).
  const int workers = std::max(
      1, std::min(4, static_cast<int>(std::thread::hardware_concurrency())));
  sb->server = std::make_unique<apt::serve::Server>(
      sb->model, apt::serve::ServerOptions{.workers = workers});
  sb->x = Tensor(Shape{ServeBench::kPool, 3, 16, 16});
  rng.fill_normal(sb->x, 0, 1);
  return sb;
}

std::vector<Workload> build_workloads(const Config& cfg) {
  using apt::nn::GemmBackend;
  std::vector<Workload> ws;
  const int64_t conv_batch = cfg.quick ? 2 : 8;
  const int64_t train_batch = cfg.quick ? 8 : 32;

  auto gemm_workload = [](int64_t m, int64_t n, int64_t k, bool tb,
                          GemmBackend backend) {
    return [=]() -> std::function<void()> {
      auto a = std::make_shared<std::vector<float>>(
          static_cast<size_t>(m * k));
      auto b = std::make_shared<std::vector<float>>(
          static_cast<size_t>(k * n));
      auto c = std::make_shared<std::vector<float>>(
          static_cast<size_t>(m * n));
      Rng rng(1);
      for (auto& v : *a) v = rng.uniform(-1, 1);
      for (auto& v : *b) v = rng.uniform(-1, 1);
      return [=] {
        BackendGuard guard(backend);
        apt::nn::gemm(false, tb, m, n, k, 1.0f, a->data(), b->data(), 0.0f,
                      c->data());
      };
    };
  };

  // The acceptance workload: 256^3, packed vs the legacy ikj backend.
  ws.push_back({"gemm_f32_256_packed", 2 * 256 * 256 * 256,
                gemm_workload(256, 256, 256, false, GemmBackend::kPacked)});
  ws.push_back(
      {"gemm_f32_256_packed_scalar", 2 * 256 * 256 * 256,
       gemm_workload(256, 256, 256, false, GemmBackend::kPackedScalar)});
  ws.push_back({"gemm_f32_256_ikj", 2 * 256 * 256 * 256,
                gemm_workload(256, 256, 256, false, GemmBackend::kIkj)});
  // Linear-layer shape: y = x * W^T exercises trans_b packing.
  ws.push_back({"gemm_f32_128x512x256_nt", 2 * 128 * 512 * 256,
                gemm_workload(128, 512, 256, true, GemmBackend::kPacked)});
  // Integer kernel on the acceptance shape: full-range u8 activation
  // codes against a 6-bit weight plane (the paper's operating point),
  // which engages the vpmaddubsw quad strategy. Non-trivial zero-points,
  // dequantised fp32 output.
  ws.push_back({"gemm_s8_256", 2 * 256 * 256 * 256, []() {
                  const int64_t m = 256, n = 256, k = 256;
                  auto a = std::make_shared<std::vector<uint8_t>>(
                      static_cast<size_t>(m * k));
                  auto b = std::make_shared<std::vector<uint8_t>>(
                      static_cast<size_t>(k * n));
                  auto c = std::make_shared<std::vector<float>>(
                      static_cast<size_t>(m * n));
                  Rng rng(1);
                  for (auto& v : *a)
                    v = static_cast<uint8_t>(rng.randint(0, 255));
                  for (auto& v : *b)
                    v = static_cast<uint8_t>(rng.randint(0, 63));
                  apt::nn::GemmS8Params qp{0.01, 0.02, 128, 31};
                  qp.max_b = 63;
                  return std::function<void()>([=] {
                    apt::nn::gemm_s8(false, false, m, n, k, a->data(),
                                     b->data(), qp, c->data());
                  });
                }});
  // Skinny integer GEMM (one MC block tall): the shape whose
  // parallelism comes from the planner's split-N decomposition instead
  // of M partitioning. Runs through the plan-keyed API.
  ws.push_back({"gemm_skinny_s8", 2 * 8 * 1024 * 256, []() {
                  const int64_t m = 8, n = 1024, k = 256;
                  auto a = std::make_shared<std::vector<uint8_t>>(
                      static_cast<size_t>(m * k));
                  auto b = std::make_shared<std::vector<uint8_t>>(
                      static_cast<size_t>(k * n));
                  auto c = std::make_shared<std::vector<float>>(
                      static_cast<size_t>(m * n));
                  Rng rng(1);
                  for (auto& v : *a)
                    v = static_cast<uint8_t>(rng.randint(0, 255));
                  for (auto& v : *b)
                    v = static_cast<uint8_t>(rng.randint(0, 63));
                  apt::nn::GemmS8Params qp{0.01, 0.02, 128, 31};
                  qp.max_b = 63;
                  return std::function<void()>([=] {
                    const apt::nn::KernelPlan& plan = apt::nn::plan_for(
                        apt::nn::PlanKey::s8(m, n, k, false, false, 255, 63));
                    apt::nn::GemmS8Args ga;
                    ga.a = a->data();
                    ga.b = b->data();
                    ga.params = qp;
                    ga.out = c->data();
                    apt::nn::gemm_s8_ex(plan, ga);
                  });
                }});

  auto conv_workload = [conv_batch](bool backward, GemmBackend backend) {
    return [=]() -> std::function<void()> {
      Rng rng(1);
      apt::nn::Conv2dOptions opts;
      opts.in_channels = 64;
      opts.out_channels = 64;
      opts.bias = true;
      auto conv = std::make_shared<apt::nn::Conv2d>("bench", opts, rng);
      auto x = std::make_shared<Tensor>(Shape{conv_batch, 64, 16, 16});
      rng.fill_normal(*x, 0, 1);
      auto dy = std::make_shared<Tensor>(conv->forward(*x, true).shape());
      rng.fill_normal(*dy, 0, 1);
      return [=] {
        BackendGuard guard(backend);
        if (backward) {
          conv->forward(*x, true);
          conv->backward(*dy);
        } else {
          conv->forward(*x, true);
        }
      };
    };
  };
  // MACs: 64 out-ch * 16*16 * (64*3*3) per sample; backward ~3x forward.
  const int64_t conv_macs = 64 * 16 * 16 * 64 * 3 * 3 * conv_batch;
  ws.push_back(
      {"conv3x3_c64_fwd_packed", 2 * conv_macs,
       conv_workload(/*backward=*/false, GemmBackend::kPacked)});
  ws.push_back({"conv3x3_c64_fwd_ikj", 2 * conv_macs,
                conv_workload(/*backward=*/false, GemmBackend::kIkj)});
  // Quantised forward: 8-bit weight codes + activation quantiser through
  // gemm_s8 (the training-mode call also feeds the range tracker).
  ws.push_back({"conv3x3_c64_fwd_s8", 2 * conv_macs, [conv_batch]() {
                  Rng rng(1);
                  apt::nn::Conv2dOptions opts;
                  opts.in_channels = 64;
                  opts.out_channels = 64;
                  opts.bias = true;
                  auto conv =
                      std::make_shared<apt::nn::Conv2d>("bench_s8", opts, rng);
                  apt::core::GridOptions go;
                  go.bits = 6;  // APT's starting point; quad-path eligible
                  auto& w = conv->weight();
                  w.rep =
                      std::make_shared<apt::core::GridRepresentation>(w, go);
                  auto x = std::make_shared<Tensor>(
                      Shape{conv_batch, 64, 16, 16});
                  rng.fill_normal(*x, 0, 1);
                  return std::function<void()>([=] {
                    BackendGuard guard(apt::nn::GemmBackend::kInt8);
                    conv->forward(*x, true);
                  });
                }});
  // 1x1 quantised conv: the planner lowers it to a direct code-plane
  // GEMM (kS8ConvDirect — no staging, no implicit gather).
  const int64_t conv1x1_macs = 64 * 16 * 16 * 64 * conv_batch;
  ws.push_back({"conv1x1_c64_s8", 2 * conv1x1_macs, [conv_batch]() {
                  Rng rng(1);
                  apt::nn::Conv2dOptions opts;
                  opts.in_channels = 64;
                  opts.out_channels = 64;
                  opts.kernel = 1;
                  opts.padding = 0;
                  opts.bias = true;
                  auto conv = std::make_shared<apt::nn::Conv2d>("bench_1x1",
                                                                opts, rng);
                  apt::core::GridOptions go;
                  go.bits = 6;
                  auto& w = conv->weight();
                  w.rep =
                      std::make_shared<apt::core::GridRepresentation>(w, go);
                  auto x = std::make_shared<Tensor>(
                      Shape{conv_batch, 64, 16, 16});
                  rng.fill_normal(*x, 0, 1);
                  return std::function<void()>([=] {
                    BackendGuard guard(apt::nn::GemmBackend::kInt8);
                    conv->forward(*x, true);
                  });
                }});
  ws.push_back(
      {"conv3x3_c64_fwdbwd_packed", 6 * conv_macs,
       conv_workload(/*backward=*/true, GemmBackend::kPacked)});
  ws.push_back({"conv3x3_c64_fwdbwd_ikj", 6 * conv_macs,
                conv_workload(/*backward=*/true, GemmBackend::kIkj)});
  // Quantised fwd+bwd: two warm-up passes initialise the activation AND
  // gradient range trackers (the gradient grid lags one step), so the
  // timed region runs the stochastically-rounded dY quantiser and both
  // integer gradient GEMMs (dcols / dW) every iteration.
  ws.push_back({"conv3x3_c64_fwdbwd_s8", 6 * conv_macs, [conv_batch]() {
                  Rng rng(1);
                  apt::nn::Conv2dOptions opts;
                  opts.in_channels = 64;
                  opts.out_channels = 64;
                  opts.bias = true;
                  auto conv = std::make_shared<apt::nn::Conv2d>(
                      "bench_bwd_s8", opts, rng);
                  apt::core::GridOptions go;
                  go.bits = 6;  // APT's starting point; quad-path eligible
                  auto& w = conv->weight();
                  w.rep =
                      std::make_shared<apt::core::GridRepresentation>(w, go);
                  auto x = std::make_shared<Tensor>(
                      Shape{conv_batch, 64, 16, 16});
                  rng.fill_normal(*x, 0, 1);
                  auto dy = std::make_shared<Tensor>(
                      conv->forward(*x, true).shape());
                  rng.fill_normal(*dy, 0, 1);
                  {
                    BackendGuard guard(apt::nn::GemmBackend::kInt8);
                    for (int i = 0; i < 2; ++i) {
                      conv->forward(*x, true);
                      conv->backward(*dy);
                    }
                  }
                  return std::function<void()>([=] {
                    BackendGuard guard(apt::nn::GemmBackend::kInt8);
                    conv->forward(*x, true);
                    conv->backward(*dy);
                  });
                }});

  // Two-conv chain (Conv -> ReLU -> Conv) in both regimes. The s8
  // variant exercises the code-passing dataflow: after two warm-up
  // passes (range trackers), conv1 emits u8 codes through the fused
  // requantising epilogue, ReLU clamps the byte plane, and conv2 feeds
  // the codes straight into its byte im2col — no fp32 round-trip
  // between the layers. The packed variant is the same model on the
  // fp32 backend; the derived conv_s8_chain_ratio_vs_packed is the
  // gated claim that the quantised dataflow beats fp32 end to end.
  auto chain_workload = [conv_batch](bool int8) {
    return [=]() -> std::function<void()> {
      Rng rng(1);
      apt::nn::Conv2dOptions opts;
      opts.in_channels = 64;
      opts.out_channels = 64;
      opts.bias = true;
      auto net = std::make_shared<apt::nn::Sequential>("chain");
      auto* c1 = net->emplace<apt::nn::Conv2d>("chain.c1", opts, rng);
      net->emplace<apt::nn::ReLU>("chain.relu");
      auto* c2 = net->emplace<apt::nn::Conv2d>("chain.c2", opts, rng);
      if (int8) {
        apt::core::GridOptions go;
        go.bits = 6;  // APT's starting point; quad-path eligible
        for (auto* c : {c1, c2}) {
          auto& w = c->weight();
          w.rep = std::make_shared<apt::core::GridRepresentation>(w, go);
        }
      }
      auto x = std::make_shared<Tensor>(Shape{conv_batch, 64, 16, 16});
      rng.fill_normal(*x, 0, 1);
      if (int8) {  // warm the range trackers so emission engages
        BackendGuard guard(apt::nn::GemmBackend::kInt8);
        net->forward(*x, true);
        net->forward(*x, true);
      }
      return std::function<void()>([=] {
        BackendGuard guard(int8 ? apt::nn::GemmBackend::kInt8
                                : apt::nn::GemmBackend::kPacked);
        net->forward(*x, true);
      });
    };
  };
  ws.push_back({"conv_chain_packed", 4 * conv_macs,
                chain_workload(/*int8=*/false)});
  ws.push_back({"conv_s8_chain", 4 * conv_macs, chain_workload(true)});

  // Whole train step (ResNet-8 fwd + loss + bwd) on the default backend:
  // the end-to-end number the kernel work is in service of.
  ws.push_back({"train_step_resnet8", train_batch, [train_batch]() {
                  Rng rng(1);
                  auto model = apt::models::make_resnet(
                      {.n = 1, .base_width = 8, .num_classes = 10}, rng);
                  auto x =
                      std::make_shared<Tensor>(Shape{train_batch, 3, 16, 16});
                  rng.fill_normal(*x, 0, 1);
                  auto labels = std::make_shared<std::vector<int32_t>>();
                  for (int64_t i = 0; i < train_batch; ++i)
                    labels->push_back(static_cast<int32_t>(i % 10));
                  auto loss = std::make_shared<apt::nn::SoftmaxCrossEntropy>();
                  std::shared_ptr<apt::nn::Sequential> net(std::move(model));
                  return std::function<void()>([=] {
                    Tensor logits = net->forward(*x, /*training=*/true);
                    loss->forward(logits, *labels);
                    net->backward(loss->backward());
                  });
                }});

  // Full data-parallel step (shard split, fwd, loss, bwd, shard-ordered
  // gradient reduction) vs the serial reference: the SAME shards in
  // order on ONE thread (the pool is bypassed entirely via
  // force_serial, so inner kernel parallel_fors run inline too). Both
  // produce bit-identical gradients, so the derived speedup measures
  // whole-step multicore utilisation against a true one-thread
  // baseline.
  // Grain keeps both modes at >= 4 shards (quick: batch 8 / grain 2,
  // full: batch 32 / grain 4) so a 4-core runner has parallelism to
  // demonstrate.
  const int64_t step_grain = cfg.quick ? 2 : 4;
  auto sharded_step_workload = [train_batch, step_grain](int num_workers) {
    return [=]() -> std::function<void()> {
      Rng rng(1);
      auto model = apt::models::make_resnet(
          {.n = 1, .base_width = 8, .num_classes = 10}, rng);
      std::shared_ptr<apt::nn::Sequential> net(std::move(model));
      auto batch = std::make_shared<apt::data::Batch>();
      batch->inputs = Tensor(Shape{train_batch, 3, 16, 16});
      rng.fill_normal(batch->inputs, 0, 1);
      for (int64_t i = 0; i < train_batch; ++i)
        batch->labels.push_back(static_cast<int32_t>(i % 10));
      auto engine = std::make_shared<apt::train::ShardedStep>(
          *net, apt::train::ShardedStepConfig{num_workers, step_grain});
      auto params = std::make_shared<std::vector<apt::nn::Parameter*>>(
          net->parameters());
      // net is captured explicitly: the engine holds the model by
      // reference, so the closure must own it to keep it alive.
      const bool serial = num_workers == 1;
      return std::function<void()>([net, batch, engine, params, serial] {
        for (auto* p : *params) p->zero_grad();
        if (serial) apt::ThreadPool::set_force_serial(true);
        engine->run(*batch);
        if (serial) apt::ThreadPool::set_force_serial(false);
      });
    };
  };
  ws.push_back({"train_step_parallel", train_batch,
                sharded_step_workload(/*num_workers=*/0)});
  ws.push_back({"train_step_serial", train_batch,
                sharded_step_workload(/*num_workers=*/1)});

  // Serving QPS: kServeClients concurrent clients fire kServeReqs
  // single-sample requests each at the dynamic-batching server (workers
  // coalesce whatever is queued, up to the model's max_batch), vs the
  // SAME requests as batch-1 run() calls on one thread. The derived
  // serve_resnet8_qps_speedup_vs_serial is the batching + worker-
  // concurrency claim; responses are bit-identical by construction
  // (tests/serve_test.cpp), so the ratio is pure throughput.
  ws.push_back({"serve_resnet8_qps", kServeClients * kServeReqs, []() {
                  auto sb = make_serve_bench();
                  return std::function<void()>([sb] {
                    std::vector<std::thread> clients;
                    const int64_t in_elems = sb->model.in_elems();
                    for (int c = 0; c < kServeClients; ++c) {
                      clients.emplace_back([&sb, in_elems, c] {
                        std::vector<float> out(10);
                        for (int r = 0; r < kServeReqs; ++r) {
                          const int64_t s = (c + r) % ServeBench::kPool;
                          sb->server->infer(sb->x.data() + s * in_elems,
                                            out.data());
                        }
                      });
                    }
                    for (auto& t : clients) t.join();
                  });
                }});
  ws.push_back({"serve_resnet8_serial", kServeClients * kServeReqs, []() {
                  auto sb = make_serve_bench();
                  auto ctx = std::make_shared<apt::serve::InferenceContext>();
                  auto out = std::make_shared<std::vector<float>>(10);
                  return std::function<void()>([sb, ctx, out] {
                    const int64_t in_elems = sb->model.in_elems();
                    for (int i = 0; i < kServeClients * kServeReqs; ++i) {
                      const int64_t s = i % ServeBench::kPool;
                      sb->model.run(sb->x.data() + s * in_elems, 1,
                                    out->data(), *ctx);
                    }
                  });
                }});
  return ws;
}

// ------------------------------------------------------------- reporting

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

double find_ns(const std::vector<BenchResult>& rs, const std::string& name) {
  for (const auto& r : rs)
    if (r.name == name) return r.ns_per_iter;
  return 0.0;
}

void write_json(const Config& cfg, const std::vector<BenchResult>& results,
                const std::map<std::string, double>& derived) {
  std::ofstream out(cfg.out);
  if (!out) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n", cfg.out.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"apt-bench-kernels/1\",\n";
  out << "  \"mode\": \"" << (cfg.quick ? "quick" : "default") << "\",\n";
  out << "  \"pool_threads\": " << apt::ThreadPool::global().size() + 1
      << ",\n";
  out << "  \"avx2_fma\": "
      << (apt::nn::gemm_cpu_has_avx2_fma() ? "true" : "false") << ",\n";
  out << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ns_per_iter\": %.1f, "
                  "\"work_items\": %lld, \"items_per_sec\": %.4g}%s\n",
                  json_escape(r.name).c_str(), r.ns_per_iter,
                  static_cast<long long>(r.work_items),
                  r.work_items * 1e9 / r.ns_per_iter,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"derived\": {";
  size_t i = 0;
  for (const auto& [key, value] : derived) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %.3f",
                  i++ ? "," : "", key.c_str(), value);
    out << buf;
  }
  out << "\n  }\n}\n";
  std::printf("wrote %s\n", cfg.out.c_str());
}

// Minimal scanner for the files this tool writes itself: pulls the
// ("name", "ns_per_iter") pairs out of the benchmarks array, plus the
// "mode" field so a gate never compares across workload sizes.
std::map<std::string, double> read_reference(const std::string& path,
                                             std::string* mode) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_runner: cannot read reference %s\n",
                 path.c_str());
    std::exit(1);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const size_t mode_key = text.find("\"mode\"");
  if (mode_key != std::string::npos) {
    const size_t q0 = text.find('"', mode_key + 6 + 1);
    const size_t q1 = text.find('"', q0 + 1);
    if (q0 != std::string::npos && q1 != std::string::npos)
      *mode = text.substr(q0 + 1, q1 - q0 - 1);
  }
  std::map<std::string, double> ref;
  size_t pos = 0;
  for (;;) {
    const size_t name_key = text.find("\"name\"", pos);
    if (name_key == std::string::npos) break;
    const size_t q0 = text.find('"', name_key + 6 + 1);
    const size_t q1 = text.find('"', q0 + 1);
    const size_t ns_key = text.find("\"ns_per_iter\"", q1);
    if (q0 == std::string::npos || q1 == std::string::npos ||
        ns_key == std::string::npos)
      break;
    const size_t colon = text.find(':', ns_key);
    ref[text.substr(q0 + 1, q1 - q0 - 1)] =
        std::strtod(text.c_str() + colon + 1, nullptr);
    pos = ns_key + 1;
  }
  return ref;
}

int run_gate(const Config& cfg, const std::vector<BenchResult>& results,
             const std::map<std::string, double>& derived) {
  std::string ref_mode;
  const auto ref = read_reference(cfg.check, &ref_mode);
  const std::string run_mode = cfg.quick ? "quick" : "default";
  if (!ref_mode.empty() && ref_mode != run_mode) {
    std::fprintf(stderr,
                 "bench_runner: reference %s was recorded in \"%s\" mode but "
                 "this run used \"%s\" — rerun with %s\n",
                 cfg.check.c_str(), ref_mode.c_str(), run_mode.c_str(),
                 ref_mode == "quick" ? "--quick" : "no --quick");
    return 1;
  }
  int failures = 0;
  std::printf(
      "\nperf gate vs %s (tolerance %.2fx, min speedup %.2fx, "
      "min train speedup %.2fx on >= 4 threads)\n",
      cfg.check.c_str(), cfg.tolerance, cfg.min_speedup,
      cfg.min_train_speedup);
  std::printf("%-32s %14s %14s %8s\n", "benchmark", "ref ns/iter",
              "now ns/iter", "ratio");
  for (const auto& r : results) {
    const auto it = ref.find(r.name);
    if (it == ref.end() || it->second <= 0.0) {
      // A benchmark the reference does not know cannot be gated; under
      // --filter that is expected, otherwise it means someone renamed
      // or added a workload without regenerating perf_reference.json —
      // fail rather than silently un-gate it.
      const bool bad = cfg.filter.empty();
      if (bad) ++failures;
      std::printf("%-32s %14s %14.0f %8s%s\n", r.name.c_str(), "-",
                  r.ns_per_iter, "new", bad ? "  << not in reference" : "");
      continue;
    }
    const double ratio = r.ns_per_iter / it->second;
    const bool bad = ratio > cfg.tolerance;
    if (bad) ++failures;
    std::printf("%-32s %14.0f %14.0f %7.2fx%s\n", r.name.c_str(), it->second,
                r.ns_per_iter, ratio, bad ? "  << FAIL" : "");
  }
  if (cfg.filter.empty()) {
    for (const auto& [name, ns] : ref) {
      bool measured = false;
      for (const auto& r : results) measured |= r.name == name;
      if (!measured) {
        ++failures;
        std::printf("%-32s %14.0f %14s %8s  << stale reference entry\n",
                    name.c_str(), ns, "-", "-");
      }
    }
  }
  const unsigned pool_threads = apt::ThreadPool::global().size() + 1;
  for (const auto& [key, value] : derived) {
    if (key == "train_step_parallel_speedup_vs_serial") {
      // Parallel-vs-serial gain needs cores to exist: >= 4 participating
      // threads enforce the full floor; 2-3 threads are held to the
      // break-even floor (the engine must not lose to its own serial
      // reference); a 1-thread pool runs the identical code path and is
      // recorded only.
      double floor = 0.0;
      if (pool_threads >= 4) {
        floor = cfg.min_train_speedup;
      } else if (pool_threads >= 2) {
        floor = cfg.min_train_speedup_2t;
      }
      if (floor > 0.0 && value < floor) {
        ++failures;
        std::printf("%-32s %37.2fx  << below min train speedup (%.2fx)\n",
                    key.c_str(), value, floor);
      }
      continue;
    }
    if (key == "serve_resnet8_qps_speedup_vs_serial") {
      // The serving speedup is worker concurrency: gate like the train
      // step (full floor on >= 4 threads, break-even on 2-3, recorded
      // only on 1).
      double floor = 0.0;
      if (pool_threads >= 4) {
        floor = cfg.min_serve_speedup;
      } else if (pool_threads >= 2) {
        floor = cfg.min_train_speedup_2t;
      }
      if (floor > 0.0 && value < floor) {
        ++failures;
        std::printf("%-32s %37.2fx  << below min serve speedup (%.2fx)\n",
                    key.c_str(), value, floor);
      }
      continue;
    }
    // Latency percentiles are wall-clock, runner-dependent: record only.
    if (key.find("_us") != std::string::npos) continue;
    // Int8-vs-packed conv ratios carry their own floors (they are
    // thinner than the pure-GEMM speedups: quantise/gather overhead).
    double floor = 0.0;
    if (key == "conv3x3_c64_fwd_s8_ratio_vs_packed") {
      floor = cfg.min_conv_s8_ratio;
    } else if (key == "conv_s8_chain_ratio_vs_packed") {
      floor = cfg.min_chain_ratio;
    } else if (key == "conv3x3_c64_fwdbwd_s8_ratio_vs_packed") {
      floor = cfg.min_fwdbwd_s8_ratio;
    } else if (key.find("speedup") != std::string::npos) {
      floor = cfg.min_speedup;
    }
    if (floor > 0.0 && value < floor) {
      ++failures;
      std::printf("%-32s %37.2fx  << below floor (%.2fx)\n", key.c_str(),
                  value, floor);
    }
  }
  if (failures > 0) {
    std::printf("perf gate FAILED: %d check(s) out of bounds\n", failures);
    return 1;
  }
  std::printf("perf gate passed\n");
  return 0;
}

// ------------------------------------------------------------- autotune

// Times every candidate plan for a representative set of keys (the
// bench workloads' own shapes), adopts each winner into the plan cache,
// and persists the cache to `path`. Selection here is measured, not
// modelled — but every candidate is bit-identical by the planner's
// contract, so adopting any of them only changes speed.
int run_autotune(const std::string& path, bool quick) {
  using apt::nn::GemmS8Args;
  using apt::nn::GemmS8ConvB;
  using apt::nn::GemmS8Params;
  using apt::nn::KernelPlan;
  using apt::nn::PlanKey;
  using apt::nn::PlanStrategy;

  struct Tunable {
    std::string name;
    PlanKey key;
    // Runner for one candidate; owns its operands via captures.
    std::function<void(const KernelPlan&)> run;
  };
  std::vector<Tunable> tunables;

  // fp32 acceptance shape + the linear-layer trans_b shape.
  for (const auto& [name, m, n, k, tb] :
       {std::tuple{"gemm_f32_256", int64_t{256}, int64_t{256}, int64_t{256},
                   false},
        std::tuple{"gemm_f32_128x512x256_nt", int64_t{128}, int64_t{512},
                   int64_t{256}, true}}) {
    auto a = std::make_shared<std::vector<float>>(static_cast<size_t>(m * k));
    auto b = std::make_shared<std::vector<float>>(static_cast<size_t>(k * n));
    auto c = std::make_shared<std::vector<float>>(static_cast<size_t>(m * n));
    Rng rng(1);
    for (auto& v : *a) v = rng.uniform(-1, 1);
    for (auto& v : *b) v = rng.uniform(-1, 1);
    tunables.push_back({name, PlanKey::f32(m, n, k, false, tb),
                        [=](const KernelPlan& plan) {
                          apt::nn::gemm_ex(plan, 1.0f, a->data(), b->data(),
                                           0.0f, c->data());
                        }});
  }

  // Integer shapes: the acceptance square and the skinny split-N shape.
  for (const auto& [name, m, n, k] :
       {std::tuple{"gemm_s8_256", int64_t{256}, int64_t{256}, int64_t{256}},
        std::tuple{"gemm_skinny_s8", int64_t{8}, int64_t{1024},
                   int64_t{256}}}) {
    auto a = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(m * k));
    auto b = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(k * n));
    auto c = std::make_shared<std::vector<float>>(static_cast<size_t>(m * n));
    Rng rng(1);
    for (auto& v : *a) v = static_cast<uint8_t>(rng.randint(0, 255));
    for (auto& v : *b) v = static_cast<uint8_t>(rng.randint(0, 63));
    GemmS8Params qp{0.01, 0.02, 128, 31};
    qp.max_b = 63;
    tunables.push_back({name, PlanKey::s8(m, n, k, false, false, 255, 63),
                        [=](const KernelPlan& plan) {
                          GemmS8Args ga;
                          ga.a = a->data();
                          ga.b = b->data();
                          ga.params = qp;
                          ga.out = c->data();
                          apt::nn::gemm_s8_ex(plan, ga);
                        }});
  }

  // Conv keys: the 3x3 implicit-operand shape (staged padded plane) and
  // the 1x1 shape whose candidate set includes the direct strategy.
  {
    const int64_t C = 64, H = 16, W = 16, OC = 64;
    const int64_t krows3 = C * 3 * 3;
    auto w3 = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(OC * krows3));
    auto stage = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(C * (H + 2) * (W + 2)));
    auto c3 = std::make_shared<std::vector<float>>(
        static_cast<size_t>(OC * H * W));
    Rng rng(1);
    for (auto& v : *w3) v = static_cast<uint8_t>(rng.randint(0, 63));
    for (auto& v : *stage) v = static_cast<uint8_t>(rng.randint(0, 255));
    GemmS8Params qp{0.01, 0.02, 31, 128};
    qp.max_a = 63;
    tunables.push_back(
        {"conv3x3_c64_s8", PlanKey::conv_s8(OC, H * W, krows3, 3, 1, 1,
                                            /*max_a=*/63, 255),
         [=](const KernelPlan& plan) {
           GemmS8ConvB cb;
           cb.kernel = 3;
           cb.stride = 1;
           cb.oh = H;
           cb.ow = W;
           cb.padded = stage->data();
           cb.ph = H + 2;
           cb.pw = W + 2;
           GemmS8Args ga;
           ga.a = w3->data();
           ga.conv_b = &cb;
           ga.params = qp;
           ga.out = c3->data();
           apt::nn::gemm_s8_ex(plan, ga);
         }});

    auto w1 = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(OC * C));
    auto plane = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(C * H * W));
    auto c1 = std::make_shared<std::vector<float>>(
        static_cast<size_t>(OC * H * W));
    for (auto& v : *w1) v = static_cast<uint8_t>(rng.randint(0, 63));
    for (auto& v : *plane) v = static_cast<uint8_t>(rng.randint(0, 255));
    tunables.push_back(
        {"conv1x1_c64_s8", PlanKey::conv_s8(OC, H * W, C, 1, 1, 0,
                                            /*max_a=*/63, 255),
         [=](const KernelPlan& plan) {
           GemmS8Args ga;
           ga.a = w1->data();
           ga.params = qp;
           ga.out = c1->data();
           GemmS8ConvB cb;
           if (plan.strategy == PlanStrategy::kS8ConvDirect) {
             ga.b = plane->data();
           } else {
             cb.kernel = 1;
             cb.stride = 1;
             cb.oh = H;
             cb.ow = W;
             cb.padded = plane->data();
             cb.ph = H;
             cb.pw = W;
             ga.conv_b = &cb;
           }
           apt::nn::gemm_s8_ex(plan, ga);
         }});

    // Backward shapes (quantised gradient GEMMs): dcols = Wᵀ·dY (the
    // layer materialises the transposed weight codes once per backward,
    // so A is contiguous) and dW = dY·colsᵀ over a byte im2col plane;
    // dY codes ride the 6-bit stochastic-rounding grid (kGradSrBits).
    auto wt = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(krows3 * OC));
    auto dyc = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(OC * H * W));
    auto cols = std::make_shared<std::vector<uint8_t>>(
        static_cast<size_t>(krows3 * H * W));
    auto dcols = std::make_shared<std::vector<float>>(
        static_cast<size_t>(krows3 * H * W));
    auto dw = std::make_shared<std::vector<float>>(
        static_cast<size_t>(OC * krows3));
    for (auto& v : *wt) v = static_cast<uint8_t>(rng.randint(0, 63));
    for (auto& v : *dyc) v = static_cast<uint8_t>(rng.randint(0, 63));
    for (auto& v : *cols) v = static_cast<uint8_t>(rng.randint(0, 255));
    GemmS8Params qc{0.01, 0.02, 31, 32};
    qc.max_a = 63;
    qc.max_b = 63;
    tunables.push_back(
        {"conv3x3_c64_grad_dcols",
         PlanKey::conv_s8_grad_cols(krows3, H * W, OC, 3, 1, 1,
                                    /*max_a=*/63, /*max_b=*/63),
         [=](const KernelPlan& plan) {
           GemmS8Args ga;
           ga.a = wt->data();
           ga.b = dyc->data();
           ga.params = qc;
           ga.out = dcols->data();
           apt::nn::gemm_s8_ex(plan, ga);
         }});
    GemmS8Params qw{0.02, 0.01, 32, 128};
    qw.max_a = 63;
    tunables.push_back(
        {"conv3x3_c64_grad_dw",
         PlanKey::s8_grad_dw(OC, krows3, H * W, false, true, /*max_a=*/63,
                             255),
         [=](const KernelPlan& plan) {
           GemmS8Args ga;
           ga.a = dyc->data();
           ga.b = cols->data();
           ga.params = qw;
           ga.out = dw->data();
           apt::nn::gemm_s8_ex(plan, ga);
         }});
  }

  const double min_time_s = quick ? 0.02 : 0.1;
  std::printf("autotune (%zu keys)\n", tunables.size());
  for (const auto& t : tunables) {
    const std::vector<KernelPlan> cands = apt::nn::plan_candidates(t.key);
    const KernelPlan* best = nullptr;
    double best_ns = 1e300;
    for (const KernelPlan& cand : cands) {
      const double ns = time_ns_per_iter([&] { t.run(cand); }, min_time_s);
      if (ns < best_ns) {
        best_ns = ns;
        best = &cand;
      }
    }
    if (best == nullptr) continue;
    apt::nn::plan_cache_adopt(*best);
    std::printf(
        "  %-24s -> %-14s kc=%-4lld mc=%-3lld nc=%-4lld split_n=%d "
        "(%zu candidates, best %.0f ns)\n",
        t.name.c_str(), apt::nn::plan_strategy_name(best->strategy),
        static_cast<long long>(best->kc), static_cast<long long>(best->mc),
        static_cast<long long>(best->nc), best->split_n ? 1 : 0,
        cands.size(), best_ns);
  }
  if (!apt::nn::plan_cache_save(path)) {
    std::fprintf(stderr, "bench_runner: cannot write plan cache %s\n",
                 path.c_str());
    return 1;
  }
  std::printf("wrote %s (load at startup via APT_PLAN_CACHE)\n",
              path.c_str());
  return 0;
}

Config parse_args(int argc, char** argv) {
  Config cfg;
  if (const char* env = std::getenv("PERF_GATE_TOLERANCE"))
    cfg.tolerance = std::strtod(env, nullptr);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_runner: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      cfg.quick = true;
    } else if (arg == "--out") {
      cfg.out = next();
    } else if (arg == "--check") {
      cfg.check = next();
    } else if (arg == "--tolerance") {
      cfg.tolerance = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-speedup") {
      cfg.min_speedup = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-train-speedup") {
      cfg.min_train_speedup = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-train-speedup-2t") {
      cfg.min_train_speedup_2t = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-conv-s8-ratio") {
      cfg.min_conv_s8_ratio = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-chain-ratio") {
      cfg.min_chain_ratio = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-fwdbwd-s8-ratio") {
      cfg.min_fwdbwd_s8_ratio = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--min-serve-speedup") {
      cfg.min_serve_speedup = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--filter") {
      cfg.filter = next();
    } else if (arg == "--list") {
      cfg.list_only = true;
    } else if (arg == "--autotune") {
      cfg.autotune = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_runner [--quick] [--out FILE] [--check REF] "
                   "[--tolerance X] [--min-speedup X] [--min-train-speedup X] "
                   "[--min-train-speedup-2t X] [--min-conv-s8-ratio X] "
                   "[--min-chain-ratio X] [--min-fwdbwd-s8-ratio X] "
                   "[--min-serve-speedup X] [--filter SUBSTR] [--list] "
                   "[--autotune PLANS.json]\n");
      std::exit(arg == "--help" ? 0 : 2);
    }
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  const auto workloads = build_workloads(cfg);
  if (cfg.list_only) {
    for (const auto& w : workloads) std::printf("%s\n", w.name.c_str());
    return 0;
  }

  if (!cfg.autotune.empty()) {
    // Tune first: the workloads below then run with the adopted plans.
    const int rc = run_autotune(cfg.autotune, cfg.quick);
    if (rc != 0) return rc;
  }

  const double min_time_s = cfg.quick ? 0.05 : 0.25;
  // Workloads whose quotient feeds a gated self-relative ratio are timed
  // together with interleaved batches (time_pair_ns): the ratio floors
  // are meant to be runner-speed-independent, which only holds if both
  // sides see the same background load.
  const std::map<std::string, std::string> ratio_pairs = {
      {"conv3x3_c64_fwd_packed", "conv3x3_c64_fwd_s8"},
      {"conv3x3_c64_fwdbwd_packed", "conv3x3_c64_fwdbwd_s8"},
      {"conv_chain_packed", "conv_s8_chain"},
      {"serve_resnet8_serial", "serve_resnet8_qps"},
  };
  const auto passes_filter = [&](const std::string& name) {
    return cfg.filter.empty() || name.find(cfg.filter) != std::string::npos;
  };
  std::vector<BenchResult> results;
  std::map<std::string, double> paired_ns;  // partner timed ahead of turn
  std::printf("%-32s %14s %12s\n", "benchmark", "ns/iter", "Gitems/s");
  for (const auto& w : workloads) {
    if (!passes_filter(w.name)) continue;
    double ns = 0.0;
    if (const auto done = paired_ns.find(w.name); done != paired_ns.end()) {
      ns = done->second;
    } else {
      const Workload* partner = nullptr;
      if (const auto p = ratio_pairs.find(w.name);
          p != ratio_pairs.end() && passes_filter(p->second)) {
        for (const auto& cand : workloads)
          if (cand.name == p->second) partner = &cand;
      }
      if (partner != nullptr) {
        const auto [a, b] = time_pair_ns(w.make(), partner->make(), min_time_s);
        ns = a;
        paired_ns[partner->name] = b;
      } else {
        ns = time_ns_per_iter(w.make(), min_time_s);
      }
    }
    results.push_back({w.name, ns, w.work_items});
    std::printf("%-32s %14.0f %12.3f\n", w.name.c_str(), ns,
                w.work_items / ns);
    std::fflush(stdout);
  }

  std::map<std::string, double> derived;
  const double gemm_packed = find_ns(results, "gemm_f32_256_packed");
  const double gemm_ikj = find_ns(results, "gemm_f32_256_ikj");
  if (gemm_packed > 0 && gemm_ikj > 0)
    derived["gemm256_speedup_vs_ikj"] = gemm_ikj / gemm_packed;
  const double conv_packed = find_ns(results, "conv3x3_c64_fwd_packed");
  const double conv_ikj = find_ns(results, "conv3x3_c64_fwd_ikj");
  if (conv_packed > 0 && conv_ikj > 0)
    derived["conv3x3_c64_fwd_speedup_vs_ikj"] = conv_ikj / conv_packed;
  const double bwd_packed = find_ns(results, "conv3x3_c64_fwdbwd_packed");
  const double bwd_ikj = find_ns(results, "conv3x3_c64_fwdbwd_ikj");
  if (bwd_packed > 0 && bwd_ikj > 0)
    derived["conv3x3_c64_fwdbwd_speedup_vs_ikj"] = bwd_ikj / bwd_packed;
  // Integer vs fp32-packed: like the vs-ikj ratios these are measured on
  // one machine against itself, so the gate's min-speedup floor holds on
  // any runner speed. The conv number is recorded as a "ratio", not a
  // "speedup": the quantised conv forward carries non-GEMM work
  // (activation quantise, byte im2col, bias) that thins its margin to
  // ~1.2x, too close to the floor to gate without flaking; the pure-GEMM
  // key below is the gated claim.
  const double gemm_s8 = find_ns(results, "gemm_s8_256");
  if (gemm_s8 > 0 && gemm_packed > 0)
    derived["gemm256_s8_speedup_vs_packed"] = gemm_packed / gemm_s8;
  const double conv_s8 = find_ns(results, "conv3x3_c64_fwd_s8");
  if (conv_s8 > 0 && conv_packed > 0)
    derived["conv3x3_c64_fwd_s8_ratio_vs_packed"] = conv_packed / conv_s8;
  // Quantised fwd+bwd vs fp32-packed fwd+bwd: the int8 backward claim
  // (SR dY quantise + dcols/dW integer GEMMs beat the fp32 backward).
  const double bwd_s8 = find_ns(results, "conv3x3_c64_fwdbwd_s8");
  if (bwd_s8 > 0 && bwd_packed > 0)
    derived["conv3x3_c64_fwdbwd_s8_ratio_vs_packed"] = bwd_packed / bwd_s8;
  // Code-passing chain vs the same two-conv model on fp32: this is the
  // end-to-end dataflow claim (quantise once, codes all the way down).
  const double chain_s8 = find_ns(results, "conv_s8_chain");
  const double chain_packed = find_ns(results, "conv_chain_packed");
  if (chain_s8 > 0 && chain_packed > 0)
    derived["conv_s8_chain_ratio_vs_packed"] = chain_packed / chain_s8;
  // Parallel-vs-serial step: self-relative like the backend speedups, but
  // gated only on machines with enough cores to make the claim (>= 4
  // pool threads); see run_gate.
  const double step_par = find_ns(results, "train_step_parallel");
  const double step_ser = find_ns(results, "train_step_serial");
  if (step_par > 0 && step_ser > 0)
    derived["train_step_parallel_speedup_vs_serial"] = step_ser / step_par;
  // Serving: QPS speedup over the serial batch-1 baseline (gated like
  // the train-step speedup — it needs cores), plus request-latency
  // percentiles under the same concurrent-client load. The percentiles
  // are wall-clock and runner-dependent, so they are recorded in the
  // JSON but never gated.
  const double serve_batched = find_ns(results, "serve_resnet8_qps");
  const double serve_serial = find_ns(results, "serve_resnet8_serial");
  if (serve_batched > 0 && serve_serial > 0)
    derived["serve_resnet8_qps_speedup_vs_serial"] =
        serve_serial / serve_batched;
  if (serve_batched > 0) {
    auto sb = make_serve_bench();
    const int64_t in_elems = sb->model.in_elems();
    const int per_client = cfg.quick ? 100 : 500;
    std::vector<std::vector<double>> lat(kServeClients);
    {  // warm every worker's context + arena before timing requests
      std::vector<float> out(10);
      for (int i = 0; i < 2 * kServeClients; ++i)
        sb->server->infer(sb->x.data(), out.data());
    }
    std::vector<std::thread> clients;
    for (int c = 0; c < kServeClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<float> out(10);
        lat[c].reserve(per_client);
        for (int r = 0; r < per_client; ++r) {
          const int64_t s = (c + r) % ServeBench::kPool;
          const double t0 = now_ns();
          sb->server->infer(sb->x.data() + s * in_elems, out.data());
          lat[c].push_back(now_ns() - t0);
        }
      });
    }
    for (auto& t : clients) t.join();
    std::vector<double> all;
    for (const auto& l : lat) all.insert(all.end(), l.begin(), l.end());
    std::sort(all.begin(), all.end());
    derived["serve_resnet8_p50_us"] = all[all.size() / 2] / 1e3;
    derived["serve_resnet8_p99_us"] = all[all.size() * 99 / 100] / 1e3;
  }
  for (const auto& [key, value] : derived)
    std::printf("%-40s %6.2f%s\n", key.c_str(), value,
                key.find("_us") != std::string::npos ? " us" : "x");

  write_json(cfg, results, derived);
  return cfg.check.empty() ? 0 : run_gate(cfg, results, derived);
}
