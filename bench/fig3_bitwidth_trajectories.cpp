// Figure 3: Layer-wise bitwidth vs epoch under APT.
//
// Paper shape: different layers sit at different bitwidths over training
// (that is the point of layer-wise adaptation); some layers train at low
// bitwidth through the early epochs; the first and last layers climb
// highest after the learning-rate decay makes gradients (and Gavg) drop.
#include "common.hpp"

using namespace apt;

int main() {
  const bench::Scale scale = bench::scale_from_env();
  bench::print_banner("Figure 3 — Layer-wise Bitwidth v.s. Epoch under APT",
                      scale);

  bench::Experiment exp(scale);
  auto model = exp.make_model(/*seed=*/1);
  data::DataLoader loader = exp.make_train_loader();
  train::Trainer trainer(*model, loader, exp.dataset->test().images,
                         exp.dataset->test().labels, exp.trainer_config());
  core::AptController ctrl(trainer, exp.apt_config(6.0));
  trainer.add_hook(&ctrl);
  const train::History h = trainer.run();

  // The paper plots 4 of the weighted layers for clarity: we show the
  // first conv, one early-stage conv, one late-stage conv, and the final
  // fully connected layer.
  const size_t n_units = h.unit_names.size();
  const std::vector<size_t> picks = {0, n_units / 3, (2 * n_units) / 3,
                                     n_units - 1};
  std::vector<std::string> header = {"epoch"};
  for (size_t p : picks) header.push_back(h.unit_names[p]);
  io::Table t(header);
  for (const auto& e : h.epochs) {
    std::vector<std::string> row = {std::to_string(e.epoch)};
    for (size_t p : picks) row.push_back(std::to_string(e.unit_bits[p]));
    t.add_row(std::move(row));
  }
  t.print();
  t.write_csv(bench::results_dir() + "/fig3_bitwidth_trajectories.csv");

  std::printf("\nall-layer final bitwidths:\n");
  for (size_t i = 0; i < n_units; ++i)
    std::printf("  %-24s %d\n", h.unit_names[i].c_str(),
                h.epochs.back().unit_bits[i]);
  std::printf(
      "\nAlgorithm-1 decisions taken: %zu (every +1/-1 step across all "
      "layers and epochs)\n",
      ctrl.decisions().size());
  return 0;
}
