// Figure 5: Resource consumption vs test accuracy across the T_min sweep.
//
// Paper shape: sweeping the Gavg threshold from 0.1 to 100 traces the
// trade-off frontier — higher T_min costs more training energy and memory
// and buys more accuracy, rising quickly below T_min ≈ 1 and plateauing
// to the right of it. Training memory follows the same trend as energy.
#include "common.hpp"

using namespace apt;

int main() {
  const bench::Scale scale = bench::scale_from_env();
  bench::print_banner(
      "Figure 5 — Training Energy & Model Size v.s. Accuracy (T_min sweep)",
      scale);

  bench::Experiment exp(scale);
  std::printf("training fp32 reference ...\n");
  std::fflush(stdout);
  const train::History fp32 = exp.run("fp32");
  const double e32 = fp32.total_energy_j();
  const double m32 = fp32.peak_memory_bits();

  const std::vector<double> thresholds = {0.1, 0.5, 2.0, 6.0, 25.0, 100.0};
  io::Table t({"T_min", "test acc", "energy/fp32", "memory/fp32",
               "mean bits"});
  for (double tm : thresholds) {
    std::printf("training APT T_min=%g ...\n", tm);
    std::fflush(stdout);
    std::vector<int> bits;
    const train::History h = exp.run("apt", /*model_seed=*/1, tm, &bits);
    double mean_bits = 0;
    for (int b : bits) mean_bits += b;
    mean_bits /= static_cast<double>(bits.size());
    t.add_row({io::Table::fmt(tm, 1), io::Table::fmt(h.best_test_accuracy()),
               io::Table::fmt(h.total_energy_j() / e32, 3),
               io::Table::fmt(h.peak_memory_bits() / m32, 3),
               io::Table::fmt(mean_bits, 1)});
  }
  t.add_row({"fp32", io::Table::fmt(fp32.best_test_accuracy()), "1.000",
             "1.000", "32.0"});
  t.print();
  t.write_csv(bench::results_dir() + "/fig5_tmin_tradeoff.csv");

  std::printf(
      "\nshape check: accuracy, energy and memory should all rise with "
      "T_min, with diminishing accuracy returns at the high end (the "
      "paper's plateau right of the knee).\n");
  return 0;
}
