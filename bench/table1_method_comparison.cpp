// Table I: comparison of network quantisation methods.
//
// Columns follow the paper: the representation used for weight updates in
// BPROP, the optimiser, and accuracy — plus the training-memory and
// training-energy columns the paper argues about in the text (methods
// keeping an fp32 master copy save no training memory). CIFAR-10/100 are
// proxied by SynthCIFAR-10 / SynthCIFAR-20 (see DESIGN.md §2); baselines
// are representative reimplementations of each method's *update strategy*
// (see train/baselines.hpp), all trained with the same SGD recipe.
#include "common.hpp"

using namespace apt;

namespace {

struct MethodResult {
  double accuracy = -1.0;
  double memory_norm = 0.0;  // training-time model memory / fp32
  double energy_norm = 0.0;  // training energy / fp32 run
};

enum class Method { kFp32, kMaster2, kMaster8, kTernGrad, kWage8, kApt };

MethodResult run_method(const bench::Experiment& exp, Method method,
                        int64_t classes, double fp32_energy,
                        double fp32_memory) {
  auto model = exp.make_model(/*seed=*/1, classes);
  data::DataLoader loader = exp.make_train_loader();
  train::GradTransform transform;
  if (method == Method::kTernGrad)
    transform = train::make_terngrad_transform(/*seed=*/77);

  train::Trainer trainer(*model, loader, exp.dataset->test().images,
                         exp.dataset->test().labels, exp.trainer_config(),
                         transform);

  std::unique_ptr<core::AptController> ctrl;
  switch (method) {
    case Method::kFp32:
    case Method::kTernGrad:
      break;  // fp32 weights
    case Method::kMaster2:
      train::attach_master_copy(*model, 2);
      break;
    case Method::kMaster8:
      train::attach_master_copy(*model, 8);
      break;
    case Method::kWage8: {
      core::GridOptions go;
      go.bits = 8;
      go.update_rounding = quant::RoundMode::kStochastic;
      core::attach_grid(*model, go);
      break;
    }
    case Method::kApt:
      ctrl = std::make_unique<core::AptController>(trainer, exp.apt_config());
      trainer.add_hook(ctrl.get());
      break;
  }

  const train::History h = trainer.run();
  MethodResult r;
  r.accuracy = h.best_test_accuracy();
  r.memory_norm = fp32_memory > 0 ? h.peak_memory_bits() / fp32_memory : 1.0;
  r.energy_norm = fp32_energy > 0 ? h.total_energy_j() / fp32_energy : 1.0;
  return r;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::scale_from_env();
  bench::print_banner("Table I — Comparison of network quantisation methods",
                      scale);

  struct Row {
    std::string name, bprop, optimizer;
    Method method;
  };
  const std::vector<Row> rows = {
      {"E2-Train-like (fp32 SGD)", "FP32", "SGD", Method::kFp32},
      {"BNN/TWN/TTQ-like", "FP32 master + 2-bit view", "SGD",
       Method::kMaster2},
      {"DoReFa-like", "FP32 master + 8-bit view", "SGD", Method::kMaster8},
      {"TernGrad-like", "FP32 (ternary gradients)", "SGD", Method::kTernGrad},
      {"WAGE-like", "8-bit (stochastic rounding)", "SGD", Method::kWage8},
      {"APT (this paper)", "Adaptive (k0=6, no master)", "SGD", Method::kApt},
  };

  // Two datasets: the CIFAR-10 and CIFAR-100 proxies.
  io::Table t({"Method", "Model precision in BPROP", "Optimizer",
               "SynthC10 acc", "SynthC20 acc", "train mem /fp32",
               "train energy /fp32"});

  bench::Experiment exp10(scale, /*classes=*/10, /*data_seed=*/42);
  bench::Experiment exp20(scale, /*classes=*/20, /*data_seed=*/43);

  std::printf("training fp32 references ...\n");
  std::fflush(stdout);
  const train::History ref10 = exp10.run("fp32");
  const train::History ref20 = exp20.run("fp32");

  for (const Row& row : rows) {
    std::printf("running %s ...\n", row.name.c_str());
    std::fflush(stdout);
    const MethodResult r10 =
        run_method(exp10, row.method, 10, ref10.total_energy_j(),
                   ref10.peak_memory_bits());
    const MethodResult r20 =
        run_method(exp20, row.method, 20, ref20.total_energy_j(),
                   ref20.peak_memory_bits());
    t.add_row({row.name, row.bprop, row.optimizer,
               io::Table::fmt(r10.accuracy), io::Table::fmt(r20.accuracy),
               io::Table::fmt(r10.memory_norm, 3),
               io::Table::fmt(r10.energy_norm, 3)});
  }

  // The paper's extra APT row: MobileNetV2 backbone (reduced width).
  {
    std::printf("running APT on MobileNetV2 ...\n");
    std::fflush(stdout);
    Rng rng(1);
    auto model = models::make_mobilenet_v2(
        {.width_mult = 0.4, .num_classes = 10, .depth_mult = 0.34}, rng);
    data::DataLoader loader = exp10.make_train_loader();
    train::Trainer trainer(*model, loader, exp10.dataset->test().images,
                           exp10.dataset->test().labels,
                           exp10.trainer_config());
    core::AptController ctrl(trainer, exp10.apt_config());
    trainer.add_hook(&ctrl);
    const train::History h = trainer.run();
    t.add_row({"APT (MobileNetV2)", "Adaptive (k0=6, no master)", "SGD",
               io::Table::fmt(h.best_test_accuracy()), "-",
               io::Table::fmt(h.peak_memory_bits() /
                                  (32.0 * [&] {
                                    double n = 0;
                                    for (auto* leaf : nn::leaves_of(*model))
                                      for (auto* p : leaf->parameters())
                                        n += static_cast<double>(p->numel());
                                    return n;
                                  }()),
                              3),
               "-"});
  }

  t.print();
  t.write_csv(bench::results_dir() + "/table1_method_comparison.csv");

  std::printf(
      "\nshape check: every fp32-master method should show train mem >= "
      "1.0x fp32 (no savings); APT should be the only row cutting both "
      "memory and energy >50%% while staying near the fp32 accuracy.\n");
  return 0;
}
