// Shared experiment harness for the figure/table benches.
//
// Every bench reproduces one paper artefact at a CPU-sized scale:
// ResNet-20's role is played by a width-reduced CIFAR ResNet on 16x16
// SynthCIFAR (see DESIGN.md §2), with the paper's 200-epoch schedule
// compressed proportionally (LR decay at 50% / 77% of the run, APT policy
// paced to match). Set APT_BENCH_SCALE=quick|default|full to rescale;
// `full` uses the paper-sized topology (slow on CPU).
//
// Each bench prints aligned tables to stdout and writes CSV next to the
// binary under ./bench_results/.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "core/controller.hpp"
#include "data/loader.hpp"
#include "data/synth_images.hpp"
#include "io/table.hpp"
#include "models/zoo.hpp"
#include "train/baselines.hpp"
#include "train/trainer.hpp"

namespace apt::bench {

struct Scale {
  std::string name = "default";
  int64_t image_hw = 16;
  int64_t n_train = 512;
  int64_t n_test = 256;
  int64_t batch = 64;
  int epochs = 30;
  int64_t resnet_n = 1;       // blocks per stage (1 -> ResNet-8)
  int64_t resnet_width = 8;

  int64_t iters_per_epoch() const { return (n_train + batch - 1) / batch; }
};

inline Scale scale_from_env() {
  const char* env = std::getenv("APT_BENCH_SCALE");
  const std::string mode = env ? env : "default";
  Scale s;
  s.name = mode;
  if (mode == "quick") {
    s.n_train = 320;
    s.n_test = 160;
    s.epochs = 16;
  } else if (mode == "full") {
    // Paper-sized topology: ResNet-20 on 32x32, 10k/2k samples. Slow.
    s.image_hw = 32;
    s.n_train = 10000;
    s.n_test = 2000;
    s.batch = 128;
    s.epochs = 200;
    s.resnet_n = 3;
    s.resnet_width = 16;
  }
  return s;
}

/// The standard experiment fixture: SynthCIFAR + reduced ResNet + the
/// paper's SGD recipe (momentum 0.9, wd 1e-4, lr 0.1 decayed /10 at 50%
/// and 77% of the epoch budget — the 100/150-of-200 proportions).
struct Experiment {
  Scale scale;
  std::unique_ptr<data::SynthImageDataset> dataset;

  explicit Experiment(const Scale& s, int64_t classes = 10,
                      uint64_t data_seed = 42)
      : scale(s) {
    data::SynthImageConfig dc;
    dc.classes = classes;
    dc.height = s.image_hw;
    dc.width = s.image_hw;
    dc.seed = data_seed;
    dataset = std::make_unique<data::SynthImageDataset>(dc, s.n_train,
                                                        s.n_test);
  }

  train::TrainerConfig trainer_config(int warmup_epochs = 0) const {
    train::TrainerConfig cfg;
    cfg.epochs = scale.epochs;
    cfg.schedule = train::StepDecaySchedule(
        0.1,
        {static_cast<int>(scale.epochs * 0.50),
         static_cast<int>(scale.epochs * 0.77)},
        0.1, warmup_epochs, 0.01);
    return cfg;
  }

  std::unique_ptr<nn::Sequential> make_model(uint64_t seed,
                                             int64_t classes = 10) const {
    Rng rng(seed);
    return models::make_resnet(
        {.n = scale.resnet_n,
         .base_width = scale.resnet_width,
         .num_classes = classes},
        rng);
  }

  data::DataLoader make_train_loader(uint64_t seed = 5) const {
    return data::DataLoader(dataset->train().images, dataset->train().labels,
                            scale.batch, /*shuffle=*/true, seed,
                            data::AugmentConfig{});
  }

  core::AptConfig apt_config(double t_min = 6.0) const {
    core::AptConfig ac;
    ac.initial_bits = 6;
    ac.t_min = t_min;
    ac.eval_interval = 2;
    // Pace Algorithm 1 so bits-vs-progress matches the paper's 200-epoch
    // proportions (once per epoch there == ~2x per compressed epoch here).
    ac.adjust_every_iters = scale.name == "full"
                                ? 0
                                : static_cast<int>(
                                      std::max<int64_t>(1, iters_half_epoch()));
    return ac;
  }

  int64_t iters_half_epoch() const { return scale.iters_per_epoch() / 2; }

  /// One training run. `mode`: "fp32", a fixed bitwidth ("8", "12", ...),
  /// or "apt" (uses `t_min`). Returns the history; for APT also the final
  /// bitwidths via `controller_out`.
  train::History run(const std::string& mode, uint64_t model_seed = 1,
                     double t_min = 6.0,
                     std::vector<int>* final_bits = nullptr) const {
    auto model = make_model(model_seed, dataset->config().classes);
    data::DataLoader loader = make_train_loader();
    train::Trainer trainer(*model, loader, dataset->test().images,
                           dataset->test().labels, trainer_config());
    std::unique_ptr<core::AptController> ctrl;
    if (mode == "apt") {
      ctrl = std::make_unique<core::AptController>(trainer, apt_config(t_min));
      trainer.add_hook(ctrl.get());
    } else if (mode != "fp32") {
      core::GridOptions go;
      go.bits = std::atoi(mode.c_str());
      core::attach_grid(*model, go);
    }
    train::History h = trainer.run();
    if (ctrl && final_bits) *final_bits = ctrl->bits();
    return h;
  }
};

/// Output directory for CSVs (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void print_banner(const std::string& what, const Scale& s) {
  std::printf(
      "==============================================================\n"
      "%s\n"
      "scale=%s  image=%lldx%lld  train=%lld test=%lld  batch=%lld  "
      "epochs=%d  resnet(n=%lld,w=%lld)\n"
      "==============================================================\n",
      what.c_str(), s.name.c_str(), static_cast<long long>(s.image_hw),
      static_cast<long long>(s.image_hw), static_cast<long long>(s.n_train),
      static_cast<long long>(s.n_test), static_cast<long long>(s.batch),
      s.epochs, static_cast<long long>(s.resnet_n),
      static_cast<long long>(s.resnet_width));
  std::fflush(stdout);
}

}  // namespace apt::bench
