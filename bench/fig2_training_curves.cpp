// Figure 2: Test accuracy vs epoch — fp32 / 16-bit / 8-bit fixed vs APT.
//
// Paper shape: fp32 and 16-bit have the steepest curves; the 8-bit curve
// climbs visibly slower (model-wide quantisation underflow); APT starts
// below 8-bit (it begins at 6 bits) but overtakes it and catches up with
// the 16-bit / fp32 curves.
#include "common.hpp"

using namespace apt;

int main() {
  const bench::Scale scale = bench::scale_from_env();
  bench::print_banner(
      "Figure 2 — Test Accuracy v.s. Epoch (ResNet on SynthCIFAR-10)", scale);

  bench::Experiment exp(scale);
  const std::vector<std::string> modes = {"fp32", "16", "8", "apt"};
  std::vector<train::History> runs;
  for (const auto& m : modes) {
    std::printf("training %s ...\n", m.c_str());
    std::fflush(stdout);
    runs.push_back(exp.run(m));
  }

  io::Table t({"epoch", "fp32", "16-bit", "8-bit", "APT(k0=6)"});
  for (int e = 0; e < scale.epochs; ++e)
    t.add_row({std::to_string(e),
               io::Table::fmt(runs[0].epochs[e].test_accuracy),
               io::Table::fmt(runs[1].epochs[e].test_accuracy),
               io::Table::fmt(runs[2].epochs[e].test_accuracy),
               io::Table::fmt(runs[3].epochs[e].test_accuracy)});
  t.print();
  t.write_csv(bench::results_dir() + "/fig2_training_curves.csv");

  std::printf("\nfinal/best test accuracy:\n");
  for (size_t i = 0; i < modes.size(); ++i)
    std::printf("  %-10s final %.4f  best %.4f  (total energy %.4f J)\n",
                modes[i].c_str(), runs[i].final_test_accuracy(),
                runs[i].best_test_accuracy(), runs[i].total_energy_j());
  std::printf(
      "shape check: 8-bit should trail all curves (underflow; its epoch-"
      "mean underflow fraction was %.2f); APT should overtake 8-bit and "
      "approach fp32/16-bit.\n",
      runs[2].epochs.back().underflow_fraction);
  return 0;
}
