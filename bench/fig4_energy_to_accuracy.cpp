// Figure 4: Normalised training energy needed to reach accuracy targets —
// fixed 12/14/16/32-bit models vs APT.
//
// Paper shape: among fixed-precision models 12-bit is cheapest but cannot
// reach the top target inside the epoch budget ("absent from the 91.75%
// and 92% group"); higher-precision models pay steeply for the last
// fraction of accuracy; APT reaches every target with the least energy.
// Targets are expressed relative to the fp32 run's best accuracy because
// absolute numbers depend on the (synthetic) dataset.
#include "common.hpp"

using namespace apt;

int main() {
  const bench::Scale scale = bench::scale_from_env();
  bench::print_banner(
      "Figure 4 — Training Energy v.s. Bitwidth at fixed accuracy targets",
      scale);

  bench::Experiment exp(scale);
  const std::vector<std::string> modes = {"12", "14", "16", "fp32", "apt"};
  std::vector<train::History> runs;
  for (const auto& m : modes) {
    std::printf("training %s ...\n", m.c_str());
    std::fflush(stdout);
    runs.push_back(exp.run(m));
  }

  const train::History& fp32 = runs[3];
  const double e32 = fp32.total_energy_j();
  const double a32 = fp32.best_test_accuracy();
  // The paper's 91%..92% band corresponds to the top sliver of what fp32
  // achieves; sweep the analogous relative band.
  const std::vector<double> fractions = {0.90, 0.94, 0.97, 0.99};

  std::vector<std::string> header = {"target acc"};
  for (const auto& m : modes) header.push_back(m + "-bit E/E32");
  header.back() = "APT E/E32";
  header[4] = "32-bit E/E32";
  io::Table t(header);

  for (double f : fractions) {
    const double target = a32 * f;
    std::vector<std::string> row = {io::Table::fmt(target, 3)};
    for (const auto& h : runs) {
      const double e = h.energy_to_reach(target);
      row.push_back(e < 0 ? "unreached" : io::Table::fmt(e / e32, 3));
    }
    t.add_row(std::move(row));
  }
  t.print();
  t.write_csv(bench::results_dir() + "/fig4_energy_to_accuracy.csv");

  std::printf(
      "\nshape check: 12-bit should be the cheapest fixed width on low "
      "targets but miss (or barely reach) the top one; APT should reach "
      "every target with the smallest normalised energy.\n");
  std::printf("best accuracies: ");
  for (size_t i = 0; i < modes.size(); ++i)
    std::printf("%s=%.4f  ", modes[i].c_str(), runs[i].best_test_accuracy());
  std::printf("\n");
  return 0;
}
